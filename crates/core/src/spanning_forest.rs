//! Spanning forest (Section 3.4, Algorithm 2): every sampling method
//! composed with a root-based finish method yields a spanning forest by
//! assigning to each hooked root the edge that hooked it.

use crate::forest::ForestBuf;
use crate::options::{FinishMethod, SamplingMethod};
use crate::sampling::run_sampling;
use crate::shiloach_vishkin::shiloach_vishkin_finish;
use cc_graph::{CsrGraph, Edge, VertexId};
use cc_unionfind::parents::parents_from_labels;
use cc_unionfind::{KernelVisitor, NoCount, UniteKernel};

/// Whether `finish` can produce a spanning forest in this implementation:
/// union-find variants whose splice cannot cross trees, and
/// Shiloach–Vishkin (via one-shot CAS hooks).
///
/// Liu–Tarjan RootUp variants are root-based in the paper's taxonomy but
/// their `writeMin` hooks can overwrite a root's parent several times per
/// round, leaving the responsible edge ambiguous; they are excluded here
/// (documented deviation, see DESIGN.md).
pub fn supports_spanning_forest(finish: &FinishMethod) -> bool {
    match finish {
        FinishMethod::UnionFind(spec) => spec.splice != Some(cc_unionfind::SpliceKind::Splice),
        FinishMethod::ShiloachVishkin => true,
        _ => false,
    }
}

/// Computes a spanning forest of `g`: one tree per connected component,
/// returned as an edge list of original graph edges.
///
/// # Panics
/// If `finish` does not support spanning forest
/// (see [`supports_spanning_forest`]).
pub fn spanning_forest(
    g: &CsrGraph,
    sampling: &SamplingMethod,
    finish: &FinishMethod,
    seed: u64,
) -> Vec<Edge> {
    assert!(supports_spanning_forest(finish), "{} does not support spanning forest", finish.name());
    let sample = run_sampling(g, sampling, seed, true);
    let forest = sample.forest.expect("forest requested");
    let initial = &sample.labels;
    let frequent = sample.frequent;
    match finish {
        FinishMethod::UnionFind(spec) => {
            spec.dispatch(
                g.num_vertices(),
                seed,
                ForestVisitor { g, initial, frequent, forest: &forest },
            );
        }
        FinishMethod::ShiloachVishkin => {
            shiloach_vishkin_finish(g, initial, frequent, Some(&forest));
        }
        _ => unreachable!("guarded by supports_spanning_forest"),
    }
    forest.to_edges()
}

struct ForestVisitor<'a> {
    g: &'a CsrGraph,
    initial: &'a [VertexId],
    frequent: VertexId,
    forest: &'a ForestBuf,
}

impl KernelVisitor for ForestVisitor<'_> {
    type Out = ();
    fn visit<K: UniteKernel>(self, kernel: K) {
        debug_assert!(kernel.supports_forest());
        let p = parents_from_labels(self.initial);
        let (initial, frequent, forest) = (self.initial, self.frequent, self.forest);
        self.g.for_each_edge_par(|u, v| {
            if initial[u as usize] == frequent {
                return;
            }
            if let Some(hooked) = kernel.unite(&p, u, v, &mut NoCount) {
                forest.assign(hooked, u, v);
            }
        });
    }
}

/// Validates a forest against its graph: every edge exists in `g`, the
/// forest is acyclic, and it spans every component (|F| = n − #components).
/// Used by tests and the harness.
pub fn is_valid_spanning_forest(g: &CsrGraph, forest: &[Edge]) -> bool {
    let n = g.num_vertices();
    // Every forest edge must be a real edge.
    for &(u, v) in forest {
        if !g.neighbors(u).contains(&v) {
            return false;
        }
    }
    // Acyclic: adding each edge must merge two distinct sets.
    let mut uf = cc_unionfind::SeqUnionFind::new(n);
    for &(u, v) in forest {
        if !uf.union(u, v) {
            return false;
        }
    }
    // Spanning: same partition as the true components.
    let truth = cc_graph::stats::component_stats(g);
    forest.len() == n - truth.num_components
        && cc_graph::stats::same_partition(&truth.labels, &uf.labels())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::build_undirected;
    use cc_graph::generators::{grid2d, rmat_default};
    use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};

    fn samplings() -> Vec<SamplingMethod> {
        vec![
            SamplingMethod::None,
            SamplingMethod::kout_default(),
            SamplingMethod::bfs_default(),
            SamplingMethod::ldd_default(),
        ]
    }

    #[test]
    fn forest_matrix_on_rmat() {
        let el = rmat_default(10, 6_000, 4);
        let g = build_undirected(el.num_vertices, &el.edges);
        let finishes = [
            FinishMethod::fastest(),
            FinishMethod::UnionFind(UfSpec::new(UniteKind::Async, FindKind::Compress)),
            FinishMethod::UnionFind(UfSpec::new(UniteKind::Hooks, FindKind::Naive)),
            FinishMethod::ShiloachVishkin,
        ];
        for sampling in samplings() {
            for finish in &finishes {
                let f = spanning_forest(&g, &sampling, finish, 9);
                assert!(
                    is_valid_spanning_forest(&g, &f),
                    "{} + {}",
                    sampling.name(),
                    finish.name()
                );
            }
        }
    }

    #[test]
    fn forest_on_grid_with_ldd() {
        let g = grid2d(25, 25);
        let f = spanning_forest(&g, &SamplingMethod::ldd_default(), &FinishMethod::fastest(), 1);
        assert!(is_valid_spanning_forest(&g, &f));
        assert_eq!(f.len(), 624);
    }

    #[test]
    fn splice_is_rejected() {
        let spec = UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive);
        assert!(!supports_spanning_forest(&FinishMethod::UnionFind(spec)));
    }

    #[test]
    fn validator_catches_bad_forests() {
        let g = build_undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        // A cycle is not a forest.
        assert!(!is_valid_spanning_forest(&g, &[(0, 1), (1, 2), (2, 3), (3, 0)]));
        // Too few edges do not span.
        assert!(!is_valid_spanning_forest(&g, &[(0, 1)]));
        // A non-edge is rejected.
        assert!(!is_valid_spanning_forest(&g, &[(0, 2), (0, 1), (1, 2)]));
        // A real spanning tree passes.
        assert!(is_valid_spanning_forest(&g, &[(0, 1), (1, 2), (2, 3)]));
    }
}
