//! Edge liveness and forest-aware delete classification: the bookkeeping
//! that makes deletions cheap *when they can be*.
//!
//! A connectivity structure only has to re-converge when a deletion could
//! actually split a component. [`LivenessTracker`] maintains the live
//! undirected edge set together with a spanning forest of it (witnessed
//! by a sequential mirror union-find), so every delete classifies in
//! O(α) into one of [`DeleteClass`]'s three cases:
//!
//! | class                      | what it means                         | cost to re-converge |
//! |----------------------------|---------------------------------------|---------------------|
//! | [`DeleteClass::Absent`]    | edge was never live (or already dead) | none                |
//! | [`DeleteClass::NonForest`] | a cycle edge; the forest still spans  | none                |
//! | [`DeleteClass::Forest`]    | a forest edge; components may split   | rebuild             |
//!
//! The forest maintained here is exactly the kind
//! [`fn@crate::spanning_forest`] produces: when a structure rebuilds from
//! scratch it can install the recomputed forest with
//! [`LivenessTracker::rebuild_forest`], restoring the invariant
//! `forest ⊆ edges` and `forest spans edges`.
//!
//! This module is deliberately sequential — it is the *classifier*, not
//! the engine. Both [`crate::DynamicConnectivity`] and the server's
//! generation engine consult it before deciding whether a retraction
//! needs a rebuild.

use cc_graph::VertexId;
use cc_unionfind::SeqUnionFind;
use std::collections::HashSet;

/// Canonical undirected edge key: `(min << 32) | max`.
#[inline]
pub fn canon_edge(u: VertexId, v: VertexId) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    (u64::from(a) << 32) | u64::from(b)
}

/// Inverse of [`canon_edge`].
#[inline]
pub fn uncanon_edge(e: u64) -> (VertexId, VertexId) {
    ((e >> 32) as u32, e as u32)
}

/// How a delete relates to the tracked forest (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeleteClass {
    /// The edge is not live: deleting it changes nothing.
    Absent,
    /// A live non-forest (cycle) edge: removal cannot split a component,
    /// so the current labeling stays exact and no rebuild is needed.
    NonForest,
    /// A live forest edge: removal may split its component; the caller
    /// must re-converge before trusting labels again.
    Forest,
}

/// How an insert relates to the tracked forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertClass {
    /// The edge was already live.
    Duplicate,
    /// A self-loop or an edge inside an existing component: live now, but
    /// merge-wise a no-op (it joined the cycle space).
    Cycle,
    /// The edge merged two components and joined the forest.
    Merge,
}

/// Live edge set + spanning forest + mirror union-find (see module docs).
///
/// Invariants between calls: `forest ⊆ edges`; the mirror's partition
/// equals connectivity over `edges`; `forest` spans that partition.
/// After a [`DeleteClass::Forest`] removal the mirror and forest are
/// *stale* (they describe the pre-delete graph) until the caller calls
/// [`LivenessTracker::rebuild_forest`]; [`LivenessTracker::is_stale`]
/// reports that state, and while stale every further delete of a live
/// edge conservatively classifies as [`DeleteClass::Forest`].
pub struct LivenessTracker {
    n: usize,
    edges: HashSet<u64>,
    forest: HashSet<u64>,
    mirror: SeqUnionFind,
    stale: bool,
}

impl LivenessTracker {
    /// An empty tracker over `n` vertices.
    pub fn new(n: usize) -> Self {
        LivenessTracker {
            n,
            edges: HashSet::new(),
            forest: HashSet::new(),
            mirror: SeqUnionFind::new(n),
            stale: false,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of forest edges (≤ `n - 1` when fresh).
    pub fn num_forest_edges(&self) -> usize {
        self.forest.len()
    }

    /// Whether a forest deletion has left the forest/mirror stale (a
    /// rebuild is owed).
    pub fn is_stale(&self) -> bool {
        self.stale
    }

    /// Whether `{u, v}` is currently live.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.edges.contains(&canon_edge(u, v))
    }

    /// The live edge list (arbitrary order).
    pub fn edge_list(&self) -> Vec<(VertexId, VertexId)> {
        self.edges.iter().map(|&e| uncanon_edge(e)).collect()
    }

    /// Records an insert. Self-loops are never live. While fresh, a
    /// [`InsertClass::Merge`] extends the forest and the mirror, keeping
    /// both exact; while stale, novel edges still enter the live set (the
    /// owed rebuild will see them) but classify as [`InsertClass::Cycle`]
    /// because the stale mirror cannot witness a merge.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> InsertClass {
        if u == v {
            return InsertClass::Cycle;
        }
        if !self.edges.insert(canon_edge(u, v)) {
            return InsertClass::Duplicate;
        }
        if !self.stale && self.mirror.union(u, v) {
            self.forest.insert(canon_edge(u, v));
            InsertClass::Merge
        } else {
            InsertClass::Cycle
        }
    }

    /// Classifies and applies a delete: a live edge leaves the live set;
    /// a [`DeleteClass::Forest`] verdict additionally marks the tracker
    /// stale. While stale, every live-edge delete is conservatively
    /// [`DeleteClass::Forest`] (the stale forest cannot prove an edge
    /// redundant).
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> DeleteClass {
        let key = canon_edge(u, v);
        if u == v || !self.edges.remove(&key) {
            return DeleteClass::Absent;
        }
        if !self.stale && !self.forest.contains(&key) {
            return DeleteClass::NonForest;
        }
        self.forest.remove(&key);
        self.stale = true;
        DeleteClass::Forest
    }

    /// Installs an externally computed spanning forest — e.g. the output
    /// of [`fn@crate::spanning_forest`] over a snapshot of
    /// [`Self::edge_list`] — rebuilding the mirror from it and clearing
    /// staleness. The caller guarantees the forest spans the partition of
    /// the edge set it was computed from; edges that went live *after*
    /// that snapshot are re-admitted with [`Self::reclassify_live`].
    pub fn adopt_forest(&mut self, forest: &[(VertexId, VertexId)]) {
        self.mirror = SeqUnionFind::new(self.n);
        self.forest.clear();
        for &(u, v) in forest {
            if self.mirror.union(u, v) {
                self.forest.insert(canon_edge(u, v));
            }
        }
        self.stale = false;
    }

    /// Re-classifies an edge that entered the live set while the tracker
    /// was stale (its insert-time verdict was conservatively
    /// [`InsertClass::Cycle`]): under the freshly adopted forest, returns
    /// `true` iff it merges two components, extending forest and mirror
    /// exactly like a fresh [`InsertClass::Merge`]. Idempotent for edges
    /// the adopted forest already spans.
    pub fn reclassify_live(&mut self, u: VertexId, v: VertexId) -> bool {
        debug_assert!(!self.stale, "reclassify_live requires a fresh forest");
        if u == v || !self.edges.contains(&canon_edge(u, v)) {
            return false;
        }
        if self.mirror.union(u, v) {
            self.forest.insert(canon_edge(u, v));
            true
        } else {
            false
        }
    }

    /// Recomputes the forest and mirror from the current live edge set
    /// and clears staleness. O(m α) sequential; callers that already ran
    /// a parallel rebuild of their labeling do this alongside it.
    pub fn rebuild_forest(&mut self) {
        self.mirror = SeqUnionFind::new(self.n);
        self.forest.clear();
        for &e in &self.edges {
            let (u, v) = uncanon_edge(e);
            if self.mirror.union(u, v) {
                self.forest.insert(e);
            }
        }
        self.stale = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_is_order_free_and_invertible() {
        assert_eq!(canon_edge(7, 3), canon_edge(3, 7));
        assert_eq!(uncanon_edge(canon_edge(3, 7)), (3, 7));
    }

    #[test]
    fn classification_over_a_triangle() {
        let mut t = LivenessTracker::new(4);
        assert_eq!(t.insert(0, 1), InsertClass::Merge);
        assert_eq!(t.insert(1, 2), InsertClass::Merge);
        assert_eq!(t.insert(2, 0), InsertClass::Cycle);
        assert_eq!(t.insert(1, 0), InsertClass::Duplicate);
        assert_eq!(t.insert(3, 3), InsertClass::Cycle, "self-loop is never live");
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.num_forest_edges(), 2);

        // The cycle edge goes quietly; the forest still spans.
        assert_eq!(t.delete(0, 2), DeleteClass::NonForest);
        assert!(!t.is_stale());
        // Absent and duplicate deletes are no-ops.
        assert_eq!(t.delete(0, 2), DeleteClass::Absent);
        assert_eq!(t.delete(3, 0), DeleteClass::Absent);
        // A forest edge makes the tracker stale...
        assert_eq!(t.delete(0, 1), DeleteClass::Forest);
        assert!(t.is_stale());
        // ...and while stale even a would-be cycle edge is conservative.
        assert_eq!(t.insert(0, 1), InsertClass::Cycle);
        assert_eq!(t.delete(0, 1), DeleteClass::Forest);

        t.rebuild_forest();
        assert!(!t.is_stale());
        assert_eq!(t.num_edges(), 1);
        assert_eq!(t.num_forest_edges(), 1);
        assert_eq!(t.edge_list(), vec![(1, 2)]);
    }

    #[test]
    fn adopt_forest_and_reclassify_drain_a_stale_window() {
        let mut t = LivenessTracker::new(6);
        for (u, v) in [(0, 1), (1, 2), (3, 4)] {
            t.insert(u, v);
        }
        assert_eq!(t.delete(0, 1), DeleteClass::Forest);
        // Two edges arrive while stale: one bridges the split, one is a
        // duplicate-in-spirit cycle edge. Both conservatively `Cycle`.
        assert_eq!(t.insert(2, 3), InsertClass::Cycle);
        assert_eq!(t.insert(1, 2), InsertClass::Duplicate);
        // A rebuild over the *pre-insert* snapshot {1-2, 3-4} adopts
        // that forest, then the stale-window edges re-admit.
        t.adopt_forest(&[(1, 2), (3, 4)]);
        assert!(!t.is_stale());
        assert!(t.reclassify_live(2, 3), "bridging edge merges");
        assert!(!t.reclassify_live(2, 3), "second pass is a no-op");
        assert!(!t.reclassify_live(0, 5), "never-live edge is ignored");
        assert_eq!(t.num_forest_edges(), 3);
        // The forest now spans: deleting the re-admitted bridge splits.
        assert_eq!(t.delete(2, 3), DeleteClass::Forest);
    }

    #[test]
    fn rebuild_restores_exact_classification() {
        let mut t = LivenessTracker::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4)] {
            t.insert(u, v);
        }
        assert_eq!(t.delete(0, 1), DeleteClass::Forest);
        t.rebuild_forest();
        // Post-rebuild the triangle's surviving edges are both forest
        // edges (1-2, 2-0 now span {0,1,2}).
        assert_eq!(t.delete(1, 2), DeleteClass::Forest);
        t.rebuild_forest();
        assert_eq!(t.delete(3, 4), DeleteClass::Forest);
    }
}
