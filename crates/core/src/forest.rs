//! Per-vertex spanning-forest edge slots (the `edges` array of
//! Algorithm 2): each vertex holds at most one forest edge, assigned when
//! that vertex is hooked as a root (union-find) or claimed as a BFS/LDD
//! tree child.

use cc_graph::VertexId;
use cc_parallel::parallel_tabulate;
use std::sync::atomic::{AtomicU64, Ordering};

const EMPTY: u64 = u64::MAX;

/// The per-vertex edge array. Slot `r` holds the edge whose application
/// hooked vertex `r`; unassigned slots read as empty.
pub struct ForestBuf {
    slots: Box<[AtomicU64]>,
}

#[inline]
fn encode(u: VertexId, v: VertexId) -> u64 {
    (u64::from(u) << 32) | u64::from(v)
}

#[inline]
fn decode(x: u64) -> (VertexId, VertexId) {
    ((x >> 32) as u32, x as u32)
}

impl ForestBuf {
    /// Creates an all-empty buffer for `n` vertices.
    pub fn new(n: usize) -> Self {
        ForestBuf { slots: parallel_tabulate(n, |_| AtomicU64::new(EMPTY)).into_boxed_slice() }
    }

    /// Assigns edge `(u, v)` to `owner`. Each owner is assigned at most
    /// once per run by construction (roots hook once); debug builds check.
    #[inline]
    pub fn assign(&self, owner: VertexId, u: VertexId, v: VertexId) {
        let prev = self.slots[owner as usize].swap(encode(u, v), Ordering::Relaxed);
        debug_assert_eq!(prev, EMPTY, "vertex {owner} assigned twice");
    }

    /// Removes and returns `owner`'s edge, freeing the slot. Used when a
    /// relabeling changes which vertex must keep its slot free
    /// (Definition B.2 requirement 3).
    pub fn take(&self, owner: VertexId) -> Option<(VertexId, VertexId)> {
        let prev = self.slots[owner as usize].swap(EMPTY, Ordering::Relaxed);
        (prev != EMPTY).then(|| decode(prev))
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no slot is assigned.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Number of assigned slots.
    pub fn count(&self) -> usize {
        cc_parallel::parallel_count(self.slots.len(), |i| {
            self.slots[i].load(Ordering::Relaxed) != EMPTY
        })
    }

    /// Extracts the assigned edges (the FILTER step of Algorithm 2).
    pub fn to_edges(&self) -> Vec<(VertexId, VertexId)> {
        cc_parallel::pack_map(self.slots.len(), |i| {
            let x = self.slots[i].load(Ordering::Relaxed);
            (x != EMPTY).then(|| decode(x))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_extract() {
        let f = ForestBuf::new(5);
        f.assign(3, 1, 2);
        f.assign(0, 0, 4);
        assert_eq!(f.count(), 2);
        let mut edges = f.to_edges();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 4), (1, 2)]);
    }

    #[test]
    fn empty_buffer() {
        let f = ForestBuf::new(10);
        assert!(f.is_empty());
        assert!(f.to_edges().is_empty());
    }

    #[test]
    fn encode_roundtrip_extremes() {
        let f = ForestBuf::new(2);
        f.assign(0, u32::MAX - 1, 0);
        assert_eq!(f.to_edges(), vec![(u32::MAX - 1, 0)]);
    }
}
