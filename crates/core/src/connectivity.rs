//! The ConnectIt connectivity driver (Algorithm 1): sample, identify the
//! frequent component, finish.
//!
//! The union-find finish phase is a generic function monomorphized per
//! (variant, telemetry) pair through [`cc_unionfind::UfSpec::dispatch`]:
//! the per-edge
//! loop contains no virtual calls, and when path-length statistics are
//! not requested the hop accounting is compiled out entirely
//! (`NoCount`).

use crate::label_prop::label_propagation_finish;
use crate::liu_tarjan::{liu_tarjan_finish, stergiou_finish};
use crate::options::{FinishMethod, SamplingMethod};
use crate::sampling::run_sampling;
use crate::shiloach_vishkin::shiloach_vishkin_finish;
use cc_graph::{CsrGraph, VertexId};
use cc_unionfind::parents::{parents_from_labels, snapshot_labels};
use cc_unionfind::{CountHops, KernelVisitor, NoCount, PathStats, Telemetry, UniteKernel};
use std::time::Instant;

/// Timing and instrumentation for one connectivity run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Sampling-phase wall time in seconds.
    pub sampling_seconds: f64,
    /// Finish-phase wall time in seconds.
    pub finish_seconds: f64,
    /// Vertices covered by the most frequent sampled component.
    pub frequent_count: usize,
    /// Total Path Length over union-find operations (union-find finishes
    /// only; 0 otherwise).
    pub total_path_length: u64,
    /// Max Path Length over union-find operations.
    pub max_path_length: u64,
}

impl RunStats {
    /// Total wall time.
    pub fn total_seconds(&self) -> f64 {
        self.sampling_seconds + self.finish_seconds
    }
}

/// Computes connected components: the returned labeling satisfies
/// `labels[u] == labels[v]` iff `u` and `v` are connected in `g`.
///
/// ```
/// use cc_graph::build_undirected;
/// use connectit::{connectivity, FinishMethod, SamplingMethod};
/// let g = build_undirected(5, &[(0, 1), (1, 2), (3, 4)]);
/// let labels = connectivity(&g, &SamplingMethod::None, &FinishMethod::fastest());
/// assert_eq!(labels[0], labels[2]);
/// assert_ne!(labels[0], labels[3]);
/// ```
pub fn connectivity(
    g: &CsrGraph,
    sampling: &SamplingMethod,
    finish: &FinishMethod,
) -> Vec<VertexId> {
    connectivity_seeded(g, sampling, finish, 42)
}

/// [`connectivity`] with an explicit random seed (sampling choices, JTB
/// ranks). Runs the telemetry-free kernels; use [`connectivity_timed`]
/// when path-length statistics are wanted.
pub fn connectivity_seeded(
    g: &CsrGraph,
    sampling: &SamplingMethod,
    finish: &FinishMethod,
    seed: u64,
) -> Vec<VertexId> {
    run(g, sampling, finish, seed, None).0
}

/// [`connectivity_seeded`] additionally reporting per-phase statistics
/// (the counting-telemetry kernels).
pub fn connectivity_timed(
    g: &CsrGraph,
    sampling: &SamplingMethod,
    finish: &FinishMethod,
    seed: u64,
) -> (Vec<VertexId>, RunStats) {
    let path_stats = PathStats::new();
    run(g, sampling, finish, seed, Some(&path_stats))
}

fn run(
    g: &CsrGraph,
    sampling: &SamplingMethod,
    finish: &FinishMethod,
    seed: u64,
    path_stats: Option<&PathStats>,
) -> (Vec<VertexId>, RunStats) {
    let mut stats = RunStats::default();
    let t0 = Instant::now();
    let sample = run_sampling(g, sampling, seed, false);
    stats.sampling_seconds = t0.elapsed().as_secs_f64();
    stats.frequent_count = sample.frequent_count;

    let t1 = Instant::now();
    let labels = finish_components(g, finish, &sample.labels, sample.frequent, seed, path_stats);
    stats.finish_seconds = t1.elapsed().as_secs_f64();
    if let Some(ps) = path_stats {
        stats.total_path_length = ps.total_path_length();
        stats.max_path_length = ps.max_path_length();
    }
    (labels, stats)
}

/// The monomorphized union-find finish loop. With `T = NoCount` the
/// telemetry plumbing folds away; with `T = CountHops` hop counts
/// aggregate per worker chunk (recording per edge on shared atomics would
/// dominate the union work itself).
fn uf_finish<K: UniteKernel, T: Telemetry>(
    g: &CsrGraph,
    kernel: &K,
    initial: &[VertexId],
    frequent: VertexId,
    path_stats: Option<&PathStats>,
) -> Vec<VertexId> {
    let p = parents_from_labels(initial);
    g.for_each_edge_par_ctx(
        || (0u64, 0u64), // (total hops, max single-op hops)
        |ctx, u, v| {
            if initial[u as usize] == frequent {
                return;
            }
            let mut t = T::default();
            kernel.unite(&p, u, v, &mut t);
            if T::ENABLED {
                ctx.0 += t.hops();
                ctx.1 = ctx.1.max(t.hops());
            }
        },
        |(total, max)| {
            if T::ENABLED {
                if let Some(ps) = path_stats {
                    ps.record_bulk(total, max, 0);
                }
            }
        },
    );
    snapshot_labels(&p)
}

struct FinishVisitor<'a> {
    g: &'a CsrGraph,
    initial: &'a [VertexId],
    frequent: VertexId,
    path_stats: Option<&'a PathStats>,
}

impl KernelVisitor for FinishVisitor<'_> {
    type Out = Vec<VertexId>;
    fn visit<K: UniteKernel>(self, kernel: K) -> Vec<VertexId> {
        if self.path_stats.is_some() {
            uf_finish::<K, CountHops>(self.g, &kernel, self.initial, self.frequent, self.path_stats)
        } else {
            uf_finish::<K, NoCount>(self.g, &kernel, self.initial, self.frequent, None)
        }
    }
}

/// The finish phase (`FINISHCOMPONENTS` of Algorithm 1): completes the
/// sampled partial labeling, skipping work for the `frequent` component.
/// Pass `path_stats` to run the counting-telemetry kernels; with `None`
/// the hop accounting costs nothing.
pub fn finish_components(
    g: &CsrGraph,
    finish: &FinishMethod,
    initial: &[VertexId],
    frequent: VertexId,
    seed: u64,
    path_stats: Option<&PathStats>,
) -> Vec<VertexId> {
    match finish {
        FinishMethod::UnionFind(spec) => spec.dispatch(
            g.num_vertices(),
            seed,
            FinishVisitor { g, initial, frequent, path_stats },
        ),
        FinishMethod::ShiloachVishkin => shiloach_vishkin_finish(g, initial, frequent, None),
        FinishMethod::LiuTarjan(scheme) => liu_tarjan_finish(g, *scheme, initial, frequent),
        FinishMethod::Stergiou => stergiou_finish(g, initial, frequent),
        FinishMethod::LabelPropagation => label_propagation_finish(g, initial, frequent),
    }
}

/// Counts the connected components of `g` using the default algorithm.
pub fn num_components(g: &CsrGraph) -> usize {
    let labels = connectivity(g, &SamplingMethod::None, &FinishMethod::fastest());
    cc_graph::stats::count_distinct_labels(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liu_tarjan::LtScheme;
    use cc_graph::build_undirected;
    use cc_graph::generators::{grid2d, rmat_default};
    use cc_graph::stats::{component_stats, same_partition};

    fn all_finishes() -> Vec<FinishMethod> {
        let mut out = vec![
            FinishMethod::fastest(),
            FinishMethod::ShiloachVishkin,
            FinishMethod::Stergiou,
            FinishMethod::LabelPropagation,
        ];
        out.push(FinishMethod::LiuTarjan(LtScheme::crfa()));
        out.push(FinishMethod::LiuTarjan(LtScheme::pus()));
        out
    }

    fn all_samplings() -> Vec<SamplingMethod> {
        vec![
            SamplingMethod::None,
            SamplingMethod::kout_default(),
            SamplingMethod::bfs_default(),
            SamplingMethod::ldd_default(),
        ]
    }

    #[test]
    fn full_matrix_on_rmat() {
        let el = rmat_default(11, 10_000, 17);
        let g = build_undirected(el.num_vertices, &el.edges);
        let expect = component_stats(&g).labels;
        for sampling in all_samplings() {
            for finish in all_finishes() {
                let got = connectivity(&g, &sampling, &finish);
                assert!(same_partition(&expect, &got), "{} + {}", sampling.name(), finish.name());
            }
        }
    }

    #[test]
    fn full_matrix_on_grid() {
        let g = grid2d(30, 30);
        let expect = component_stats(&g).labels;
        for sampling in all_samplings() {
            for finish in all_finishes() {
                let got = connectivity(&g, &sampling, &finish);
                assert!(same_partition(&expect, &got), "{} + {}", sampling.name(), finish.name());
            }
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = grid2d(40, 40);
        let (labels, stats) =
            connectivity_timed(&g, &SamplingMethod::kout_default(), &FinishMethod::fastest(), 3);
        assert_eq!(labels.len(), 1600);
        assert!(stats.frequent_count > 0);
        assert!(stats.total_seconds() >= 0.0);
    }

    #[test]
    fn timed_and_untimed_agree() {
        // The NoCount and CountHops monomorphizations must compute the
        // same partition; only the instrumentation differs.
        let g = grid2d(25, 25);
        // Union-Async + FindNaive walks to the root on every union, so the
        // counting run must report nonzero path lengths.
        let finish = FinishMethod::UnionFind(cc_unionfind::UfSpec::new(
            cc_unionfind::UniteKind::Async,
            cc_unionfind::FindKind::Naive,
        ));
        let plain = connectivity_seeded(&g, &SamplingMethod::None, &finish, 9);
        let (timed, stats) = connectivity_timed(&g, &SamplingMethod::None, &finish, 9);
        assert!(same_partition(&plain, &timed));
        assert!(stats.total_path_length > 0, "a 25x25 grid forces real walks");
    }

    #[test]
    fn num_components_counts() {
        let g = build_undirected(7, &[(0, 1), (2, 3), (3, 4)]);
        assert_eq!(num_components(&g), 4); // {0,1},{2,3,4},{5},{6}
    }
}
