//! Shiloach–Vishkin connectivity (Section B.2.4, Algorithm 15): synchronous
//! rounds of root-to-root hooking followed by pointer jumping.
//!
//! The hook uses `writeMin` (each root receives the minimum incident root),
//! which is this paper's improvement over plain-write implementations.
//! When a spanning forest is requested, hooks go through a one-shot CAS so
//! every hooked root corresponds to exactly one responsible edge.

use crate::forest::ForestBuf;
use cc_graph::{CsrGraph, Edge, VertexId};
use cc_parallel::{parallel_for, write_min_u32};
use cc_unionfind::parents::{parents_from_labels, snapshot_labels, Parents};
use std::sync::atomic::{AtomicBool, Ordering};

/// Runs SV over the graph from sampled `initial` labels, skipping edges out
/// of the `frequent` component (pass [`cc_graph::NO_VERTEX`] to process
/// everything).
pub fn shiloach_vishkin_finish(
    g: &CsrGraph,
    initial: &[VertexId],
    frequent: VertexId,
    forest: Option<&ForestBuf>,
) -> Vec<VertexId> {
    shiloach_vishkin_impl(g, initial, frequent, forest, HookWrite::WriteMin)
}

/// Plain-write SV, as implemented by the GAP Benchmark Suite: the hook is
/// an unconditional store instead of a `writeMin`, so racing hooks of the
/// same root may be overwritten by a larger (still smaller-than-root) value
/// and take extra rounds to settle. The paper notes this variant can
/// degrade to `O(mn)` work under an adversarial scheduler; it converges in
/// practice and serves as the "GAPBS Shiloach-Vishkin" comparator row.
pub fn shiloach_vishkin_plain_write(g: &CsrGraph, initial: &[VertexId]) -> Vec<VertexId> {
    shiloach_vishkin_impl(g, initial, cc_graph::NO_VERTEX, None, HookWrite::Plain)
}

/// How the hook step writes the new parent.
#[derive(Clone, Copy, PartialEq, Eq)]
enum HookWrite {
    WriteMin,
    Plain,
}

fn shiloach_vishkin_impl(
    g: &CsrGraph,
    initial: &[VertexId],
    frequent: VertexId,
    forest: Option<&ForestBuf>,
    write: HookWrite,
) -> Vec<VertexId> {
    let p = parents_from_labels(initial);
    loop {
        let changed = AtomicBool::new(false);
        g.for_each_edge_par(|u, v| {
            if initial[u as usize] == frequent {
                return;
            }
            hook(&p, u, v, &changed, forest, write);
        });
        compress_to_stars(&p);
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
    snapshot_labels(&p)
}

/// Runs SV rounds over an explicit edge list against an existing parent
/// array (the streaming Type (ii) path). Each listed edge is applied
/// symmetrically.
pub fn sv_rounds_on_edges(p: &Parents, edges: &[Edge], forest: Option<&ForestBuf>) {
    loop {
        let changed = AtomicBool::new(false);
        cc_parallel::parallel_for_chunks(edges.len(), |r| {
            for i in r {
                let (u, v) = edges[i];
                hook(p, u, v, &changed, forest, HookWrite::WriteMin);
            }
        });
        compress_to_stars(p);
        if !changed.load(Ordering::Relaxed) {
            break;
        }
    }
}

#[inline]
fn hook(
    p: &Parents,
    u: VertexId,
    v: VertexId,
    changed: &AtomicBool,
    forest: Option<&ForestBuf>,
    write: HookWrite,
) {
    if u == v {
        return;
    }
    let pu = p[u as usize].load(Ordering::Acquire);
    let pv = p[v as usize].load(Ordering::Acquire);
    if pu == pv {
        return;
    }
    // Only hook when both endpoints currently sit at roots (the structure
    // is a set of stars after each round's compression).
    let pu_root = p[pu as usize].load(Ordering::Acquire) == pu;
    let pv_root = p[pv as usize].load(Ordering::Acquire) == pv;
    if !(pu_root && pv_root) {
        return;
    }
    let (hi, lo) = if pu > pv { (pu, pv) } else { (pv, pu) };
    if write == HookWrite::Plain {
        // GAPBS-style unconditional store: lo < hi keeps acyclicity; races
        // just cost extra rounds.
        p[hi as usize].store(lo, Ordering::Release);
        changed.store(true, Ordering::Relaxed);
        return;
    }
    match forest {
        None => {
            if write_min_u32(&p[hi as usize], lo) {
                changed.store(true, Ordering::Relaxed);
            }
        }
        Some(f) => {
            // One-shot CAS hook so the responsible edge is unambiguous.
            if p[hi as usize].compare_exchange(hi, lo, Ordering::AcqRel, Ordering::Relaxed).is_ok()
            {
                f.assign(hi, u, v);
                changed.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// Pointer-jump every vertex until the structure is a set of stars.
fn compress_to_stars(p: &Parents) {
    loop {
        let any = AtomicBool::new(false);
        parallel_for(p.len(), |v| {
            let pv = p[v].load(Ordering::Acquire);
            let ppv = p[pv as usize].load(Ordering::Acquire);
            if ppv < pv {
                p[v].store(ppv, Ordering::Release);
                any.store(true, Ordering::Relaxed);
            }
        });
        if !any.load(Ordering::Relaxed) {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::build_undirected;
    use cc_graph::generators::{grid2d, rmat_default, star};
    use cc_graph::stats::{component_stats, same_partition};
    use cc_graph::NO_VERTEX;

    fn identity(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn sv_solves_grid() {
        let g = grid2d(40, 40);
        let got = shiloach_vishkin_finish(&g, &identity(1600), NO_VERTEX, None);
        let expect = component_stats(&g).labels;
        assert!(same_partition(&expect, &got));
    }

    #[test]
    fn sv_solves_rmat_with_components() {
        let el = rmat_default(11, 6_000, 8);
        let g = build_undirected(el.num_vertices, &el.edges);
        let got = shiloach_vishkin_finish(&g, &identity(g.num_vertices()), NO_VERTEX, None);
        assert!(same_partition(&component_stats(&g).labels, &got));
    }

    #[test]
    fn sv_star_two_rounds() {
        let g = star(1000);
        let got = shiloach_vishkin_finish(&g, &identity(1000), NO_VERTEX, None);
        assert!(got.iter().all(|&l| l == 0));
    }

    #[test]
    fn sv_forest_hooks_once_per_merge() {
        let g = grid2d(20, 20);
        let f = ForestBuf::new(400);
        let got = shiloach_vishkin_finish(&g, &identity(400), NO_VERTEX, Some(&f));
        assert!(same_partition(&component_stats(&g).labels, &got));
        // Connected graph: spanning tree has exactly n - 1 edges.
        assert_eq!(f.count(), 399);
        let edges = f.to_edges();
        let induced = cc_unionfind::oracle_labels(400, &edges);
        assert!(induced.iter().all(|&l| l == induced[0]));
    }

    #[test]
    fn sv_plain_write_converges_to_same_partition() {
        let el = rmat_default(11, 8_000, 13);
        let g = build_undirected(el.num_vertices, &el.edges);
        let identity: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let got = shiloach_vishkin_plain_write(&g, &identity);
        assert!(same_partition(&component_stats(&g).labels, &got));
        let grid = grid2d(30, 30);
        let identity: Vec<u32> = (0..900).collect();
        let got = shiloach_vishkin_plain_write(&grid, &identity);
        assert!(got.iter().all(|&l| l == 0));
    }

    #[test]
    fn sv_streaming_edges_path() {
        use cc_unionfind::parents::make_parents;
        let p = make_parents(6);
        sv_rounds_on_edges(&p, &[(0, 1), (2, 3), (1, 2)], None);
        let labels = snapshot_labels(&p);
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[4]);
    }
}
