//! Fully-dynamic connectivity: the paper's stated future work ("we are
//! interested in identifying practical parallel algorithms that support
//! edge deletions"). This module provides the straightforward baseline such
//! work would be measured against: insertions are incremental (wait-free
//! union-find, exactly the streaming path), while deletions classify
//! through [`crate::liveness::LivenessTracker`] — a deletion of an absent
//! or non-forest (cycle) edge is free, and only a *forest* deletion falls
//! back to recomputing connectivity over the surviving edge set with the
//! static engine.
//!
//! The recompute path costs `O(n + m)` per forest-deletion batch — fine
//! for workloads where deletions are rare (the paper's motivation: only a
//! few percent of tweets are ever deleted), and an honest baseline
//! otherwise.

use crate::liveness::{DeleteClass, InsertClass, LivenessTracker};
use crate::options::{FinishMethod, SamplingMethod};
use cc_graph::{build_undirected, VertexId};
use cc_unionfind::parents::{find_root_readonly, parents_from_labels, Parents};
use cc_unionfind::{KernelVisitor, NoCount, UfSpec, UniteKernel};

/// The fully-dynamic operation type: deletions share [`crate::Update`]
/// with the streaming path, so mixed schedules flow through one enum
/// end-to-end (kept under its historical name for callers of this
/// module).
pub use crate::streaming::Update as DynUpdate;

/// The incremental fast path's kernel, erased at *operation* granularity
/// (deletion batches are sequential anyway): one virtual call per insert
/// with the fully monomorphized, telemetry-free union underneath. Built
/// through [`UfSpec::dispatch`]; `fresh` rebuilds the same variant with
/// cleared per-instance state after a rebuild.
trait DynKernel: Send + Sync {
    fn unite(&self, p: &Parents, u: VertexId, v: VertexId);
    fn fresh(&self) -> Box<dyn DynKernel>;
}

struct KernelHolder<K: UniteKernel> {
    kernel: K,
    n: usize,
    seed: u64,
}

impl<K: UniteKernel> DynKernel for KernelHolder<K> {
    fn unite(&self, p: &Parents, u: VertexId, v: VertexId) {
        self.kernel.unite(p, u, v, &mut NoCount);
    }

    fn fresh(&self) -> Box<dyn DynKernel> {
        Box::new(KernelHolder { kernel: K::build(self.n, self.seed), n: self.n, seed: self.seed })
    }
}

fn build_kernel(spec: &UfSpec, n: usize, seed: u64) -> Box<dyn DynKernel> {
    struct Boxer {
        n: usize,
        seed: u64,
    }
    impl KernelVisitor for Boxer {
        type Out = Box<dyn DynKernel>;
        fn visit<K: UniteKernel>(self, kernel: K) -> Box<dyn DynKernel> {
            Box::new(KernelHolder { kernel, n: self.n, seed: self.seed })
        }
    }
    spec.dispatch(n, seed, Boxer { n, seed })
}

/// A fully-dynamic connectivity structure: incremental fast path, rebuild
/// only on *forest* deletions (see [`crate::liveness`]).
pub struct DynamicConnectivity {
    n: usize,
    tracker: LivenessTracker,
    parents: Box<Parents>,
    uf: Box<dyn DynKernel>,
    spec: UfSpec,
    seed: u64,
    rebuilds: usize,
    nonforest_deletes: usize,
}

impl DynamicConnectivity {
    /// Creates an empty structure on `n` vertices using `spec` for the
    /// incremental path.
    pub fn new(n: usize, spec: UfSpec, seed: u64) -> Self {
        assert!(
            spec.splice != Some(cc_unionfind::SpliceKind::Splice),
            "phase-concurrent Rem+Splice cannot serve interleaved queries"
        );
        DynamicConnectivity {
            n,
            tracker: LivenessTracker::new(n),
            parents: cc_unionfind::make_parents(n),
            uf: build_kernel(&spec, n, seed),
            spec,
            seed,
            rebuilds: 0,
            nonforest_deletes: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.tracker.num_edges()
    }

    /// How many deletion-triggered rebuilds have happened (for tests and
    /// cost accounting).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// How many deletions were classified as non-forest (cycle) edges and
    /// therefore re-converged for free.
    pub fn nonforest_deletes(&self) -> usize {
        self.nonforest_deletes
    }

    /// Applies a batch; returns query answers in order of appearance.
    /// Operations within a batch are applied *sequentially* (unlike the
    /// insert-only streaming path) so that deletions interleave
    /// deterministically with queries.
    pub fn process_batch(&mut self, batch: &[DynUpdate]) -> Vec<bool> {
        let mut answers = Vec::new();
        for &op in batch {
            match op {
                DynUpdate::Insert(u, v) => {
                    // Merge verdicts keep the incremental labels exact;
                    // while stale, novel edges wait for the owed rebuild.
                    if self.tracker.insert(u, v) == InsertClass::Merge {
                        self.uf.unite(&self.parents, u, v);
                    }
                }
                DynUpdate::Delete(u, v) => match self.tracker.delete(u, v) {
                    DeleteClass::Absent => {}
                    // The forest still spans: the labeling stays exact.
                    DeleteClass::NonForest => self.nonforest_deletes += 1,
                    // Staleness is now recorded in the tracker; the next
                    // query (or batch end) pays for the rebuild.
                    DeleteClass::Forest => {}
                },
                DynUpdate::Query(u, v) => {
                    if self.tracker.is_stale() {
                        self.rebuild();
                    }
                    answers.push(
                        find_root_readonly(&self.parents, u)
                            == find_root_readonly(&self.parents, v),
                    );
                }
            }
        }
        if self.tracker.is_stale() {
            self.rebuild();
        }
        answers
    }

    /// Single query against the current state.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        find_root_readonly(&self.parents, u) == find_root_readonly(&self.parents, v)
    }

    /// Current labeling snapshot.
    pub fn labels(&self) -> Vec<VertexId> {
        cc_unionfind::parents::snapshot_labels(&self.parents)
    }

    /// Recomputes connectivity from the surviving edge set with the static
    /// two-phase engine, and re-derives the tracker's spanning forest.
    fn rebuild(&mut self) {
        self.rebuilds += 1;
        let edge_list = self.tracker.edge_list();
        let g = build_undirected(self.n, &edge_list);
        let labels = crate::connectivity_seeded(
            &g,
            &SamplingMethod::kout_default(),
            &FinishMethod::UnionFind(self.spec),
            self.seed,
        );
        self.parents = parents_from_labels(&labels);
        self.tracker.rebuild_forest();
        // Fresh instance: stateful variants (hooks arrays) must reset.
        self.uf = self.uf.fresh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::stats::same_partition;
    use cc_unionfind::{oracle_labels, SeqUnionFind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn canon(u: u32, v: u32) -> u64 {
        crate::liveness::canon_edge(u, v)
    }

    #[test]
    fn insert_then_delete_disconnects() {
        let mut d = DynamicConnectivity::new(4, UfSpec::fastest(), 0);
        let a = d.process_batch(&[
            DynUpdate::Insert(0, 1),
            DynUpdate::Insert(1, 2),
            DynUpdate::Query(0, 2),
            DynUpdate::Delete(1, 2),
            DynUpdate::Query(0, 2),
            DynUpdate::Query(0, 1),
        ]);
        assert_eq!(a, vec![true, false, true]);
        assert_eq!(d.rebuilds(), 1);
    }

    #[test]
    fn deleting_one_of_parallel_paths_keeps_connectivity() {
        let mut d = DynamicConnectivity::new(4, UfSpec::fastest(), 1);
        d.process_batch(&[
            DynUpdate::Insert(0, 1),
            DynUpdate::Insert(1, 3),
            DynUpdate::Insert(0, 2),
            DynUpdate::Insert(2, 3),
        ]);
        let a = d.process_batch(&[DynUpdate::Delete(1, 3), DynUpdate::Query(0, 3)]);
        assert_eq!(a, vec![true]); // the 0-2-3 path survives
    }

    #[test]
    fn nonforest_deletes_never_rebuild() {
        let mut d = DynamicConnectivity::new(4, UfSpec::fastest(), 5);
        // A triangle: the closing edge is a cycle edge.
        d.process_batch(&[
            DynUpdate::Insert(0, 1),
            DynUpdate::Insert(1, 2),
            DynUpdate::Insert(2, 0),
        ]);
        let a = d.process_batch(&[DynUpdate::Delete(2, 0), DynUpdate::Query(0, 2)]);
        assert_eq!(a, vec![true]);
        assert_eq!(d.rebuilds(), 0, "cycle-edge delete must be free");
        assert_eq!(d.nonforest_deletes(), 1);
    }

    #[test]
    fn duplicate_inserts_and_absent_deletes_are_noops() {
        let mut d = DynamicConnectivity::new(3, UfSpec::fastest(), 2);
        d.process_batch(&[DynUpdate::Insert(0, 1), DynUpdate::Insert(0, 1)]);
        assert_eq!(d.num_edges(), 1);
        d.process_batch(&[DynUpdate::Delete(1, 2)]); // absent
        assert_eq!(d.rebuilds(), 0, "absent delete must not rebuild");
        assert!(d.connected(0, 1));
    }

    #[test]
    fn randomized_against_sequential_reference() {
        let n = 200usize;
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = DynamicConnectivity::new(n, UfSpec::fastest(), 3);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for _round in 0..30 {
            let mut batch = Vec::new();
            for _ in 0..40 {
                let (u, v) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
                match rng.gen_range(0..10) {
                    0..=5 => batch.push(DynUpdate::Insert(u, v)),
                    6..=7 if !live.is_empty() => {
                        let (a, b) = live[rng.gen_range(0..live.len())];
                        batch.push(DynUpdate::Delete(a, b));
                    }
                    _ => batch.push(DynUpdate::Query(u, v)),
                }
            }
            // Maintain the reference edge multiset and compare answers.
            let mut reference_edges: std::collections::HashSet<u64> =
                live.iter().map(|&(a, b)| canon(a, b)).collect();
            let mut expected = Vec::new();
            for &op in &batch {
                match op {
                    DynUpdate::Insert(u, v) => {
                        if u != v {
                            reference_edges.insert(canon(u, v));
                        }
                    }
                    DynUpdate::Delete(u, v) => {
                        reference_edges.remove(&canon(u, v));
                    }
                    DynUpdate::Query(u, v) => {
                        let mut uf = SeqUnionFind::new(n);
                        for &e in &reference_edges {
                            uf.union((e >> 32) as u32, e as u32);
                        }
                        expected.push(uf.connected(u, v));
                    }
                }
            }
            let got = d.process_batch(&batch);
            assert_eq!(got, expected);
            live = reference_edges.iter().map(|&e| ((e >> 32) as u32, e as u32)).collect();
        }
        // Final partition agreement.
        let expect = oracle_labels(n, &live);
        assert!(same_partition(&expect, &d.labels()));
    }
}
