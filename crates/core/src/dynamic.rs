//! Fully-dynamic connectivity: the paper's stated future work ("we are
//! interested in identifying practical parallel algorithms that support
//! edge deletions"). This module provides the straightforward baseline such
//! work would be measured against: insertions are incremental (wait-free
//! union-find, exactly the streaming path), while a batch containing
//! deletions falls back to recomputing connectivity over the surviving
//! edge set with the static engine.
//!
//! The recompute path costs `O(n + m)` per deletion batch — fine for
//! workloads where deletions are rare (the paper's motivation: only a few
//! percent of tweets are ever deleted), and an honest baseline otherwise.

use crate::options::{FinishMethod, SamplingMethod};
use cc_graph::{build_undirected, VertexId};
use cc_unionfind::parents::{find_root_readonly, parents_from_labels, snapshot_labels, Parents};
use cc_unionfind::{KernelVisitor, NoCount, UfSpec, UniteKernel};
use std::collections::HashSet;

/// The incremental fast path's kernel, erased at *operation* granularity
/// (deletion batches are sequential anyway): one virtual call per insert
/// with the fully monomorphized, telemetry-free union underneath. Built
/// through [`UfSpec::dispatch`]; `fresh` rebuilds the same variant with
/// cleared per-instance state after a rebuild.
trait DynKernel: Send + Sync {
    fn unite(&self, p: &Parents, u: VertexId, v: VertexId);
    fn fresh(&self) -> Box<dyn DynKernel>;
}

struct KernelHolder<K: UniteKernel> {
    kernel: K,
    n: usize,
    seed: u64,
}

impl<K: UniteKernel> DynKernel for KernelHolder<K> {
    fn unite(&self, p: &Parents, u: VertexId, v: VertexId) {
        self.kernel.unite(p, u, v, &mut NoCount);
    }

    fn fresh(&self) -> Box<dyn DynKernel> {
        Box::new(KernelHolder { kernel: K::build(self.n, self.seed), n: self.n, seed: self.seed })
    }
}

fn build_kernel(spec: &UfSpec, n: usize, seed: u64) -> Box<dyn DynKernel> {
    struct Boxer {
        n: usize,
        seed: u64,
    }
    impl KernelVisitor for Boxer {
        type Out = Box<dyn DynKernel>;
        fn visit<K: UniteKernel>(self, kernel: K) -> Box<dyn DynKernel> {
            Box::new(KernelHolder { kernel, n: self.n, seed: self.seed })
        }
    }
    spec.dispatch(n, seed, Boxer { n, seed })
}

/// One fully-dynamic operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DynUpdate {
    /// Insert undirected edge `{u, v}` (idempotent).
    Insert(VertexId, VertexId),
    /// Delete undirected edge `{u, v}` (no-op if absent).
    Delete(VertexId, VertexId),
    /// Ask whether `u` and `v` are currently connected.
    Query(VertexId, VertexId),
}

#[inline]
fn canon(u: VertexId, v: VertexId) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    (u64::from(a) << 32) | u64::from(b)
}

/// A fully-dynamic connectivity structure: incremental fast path, rebuild
/// on deletion.
pub struct DynamicConnectivity {
    n: usize,
    edges: HashSet<u64>,
    parents: Box<Parents>,
    uf: Box<dyn DynKernel>,
    spec: UfSpec,
    seed: u64,
    rebuilds: usize,
}

impl DynamicConnectivity {
    /// Creates an empty structure on `n` vertices using `spec` for the
    /// incremental path.
    pub fn new(n: usize, spec: UfSpec, seed: u64) -> Self {
        assert!(
            spec.splice != Some(cc_unionfind::SpliceKind::Splice),
            "phase-concurrent Rem+Splice cannot serve interleaved queries"
        );
        DynamicConnectivity {
            n,
            edges: HashSet::new(),
            parents: cc_unionfind::make_parents(n),
            uf: build_kernel(&spec, n, seed),
            spec,
            seed,
            rebuilds: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// How many deletion-triggered rebuilds have happened (for tests and
    /// cost accounting).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Applies a batch; returns query answers in order of appearance.
    /// Operations within a batch are applied *sequentially* (unlike the
    /// insert-only streaming path) so that deletions interleave
    /// deterministically with queries.
    pub fn process_batch(&mut self, batch: &[DynUpdate]) -> Vec<bool> {
        let mut answers = Vec::new();
        let mut dirty = false; // a deletion happened; labels are stale
        for &op in batch {
            match op {
                DynUpdate::Insert(u, v) => {
                    if u != v && self.edges.insert(canon(u, v)) && !dirty {
                        self.uf.unite(&self.parents, u, v);
                    }
                }
                DynUpdate::Delete(u, v) => {
                    if u != v && self.edges.remove(&canon(u, v)) {
                        dirty = true;
                    }
                }
                DynUpdate::Query(u, v) => {
                    if dirty {
                        self.rebuild();
                        dirty = false;
                    }
                    answers.push(
                        find_root_readonly(&self.parents, u)
                            == find_root_readonly(&self.parents, v),
                    );
                }
            }
        }
        if dirty {
            self.rebuild();
        }
        answers
    }

    /// Single query against the current state.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        find_root_readonly(&self.parents, u) == find_root_readonly(&self.parents, v)
    }

    /// Current labeling snapshot.
    pub fn labels(&self) -> Vec<VertexId> {
        snapshot_labels(&self.parents)
    }

    /// Recomputes connectivity from the surviving edge set with the static
    /// two-phase engine.
    fn rebuild(&mut self) {
        self.rebuilds += 1;
        let edge_list: Vec<(VertexId, VertexId)> =
            self.edges.iter().map(|&e| ((e >> 32) as u32, e as u32)).collect();
        let g = build_undirected(self.n, &edge_list);
        let labels = crate::connectivity_seeded(
            &g,
            &SamplingMethod::kout_default(),
            &FinishMethod::UnionFind(self.spec),
            self.seed,
        );
        self.parents = parents_from_labels(&labels);
        // Fresh instance: stateful variants (hooks arrays) must reset.
        self.uf = self.uf.fresh();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::stats::same_partition;
    use cc_unionfind::{oracle_labels, SeqUnionFind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn insert_then_delete_disconnects() {
        let mut d = DynamicConnectivity::new(4, UfSpec::fastest(), 0);
        let a = d.process_batch(&[
            DynUpdate::Insert(0, 1),
            DynUpdate::Insert(1, 2),
            DynUpdate::Query(0, 2),
            DynUpdate::Delete(1, 2),
            DynUpdate::Query(0, 2),
            DynUpdate::Query(0, 1),
        ]);
        assert_eq!(a, vec![true, false, true]);
        assert_eq!(d.rebuilds(), 1);
    }

    #[test]
    fn deleting_one_of_parallel_paths_keeps_connectivity() {
        let mut d = DynamicConnectivity::new(4, UfSpec::fastest(), 1);
        d.process_batch(&[
            DynUpdate::Insert(0, 1),
            DynUpdate::Insert(1, 3),
            DynUpdate::Insert(0, 2),
            DynUpdate::Insert(2, 3),
        ]);
        let a = d.process_batch(&[DynUpdate::Delete(1, 3), DynUpdate::Query(0, 3)]);
        assert_eq!(a, vec![true]); // the 0-2-3 path survives
    }

    #[test]
    fn duplicate_inserts_and_absent_deletes_are_noops() {
        let mut d = DynamicConnectivity::new(3, UfSpec::fastest(), 2);
        d.process_batch(&[DynUpdate::Insert(0, 1), DynUpdate::Insert(0, 1)]);
        assert_eq!(d.num_edges(), 1);
        d.process_batch(&[DynUpdate::Delete(1, 2)]); // absent
        assert_eq!(d.rebuilds(), 0, "absent delete must not rebuild");
        assert!(d.connected(0, 1));
    }

    #[test]
    fn randomized_against_sequential_reference() {
        let n = 200usize;
        let mut rng = StdRng::seed_from_u64(7);
        let mut d = DynamicConnectivity::new(n, UfSpec::fastest(), 3);
        let mut live: Vec<(u32, u32)> = Vec::new();
        for _round in 0..30 {
            let mut batch = Vec::new();
            for _ in 0..40 {
                let (u, v) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
                match rng.gen_range(0..10) {
                    0..=5 => batch.push(DynUpdate::Insert(u, v)),
                    6..=7 if !live.is_empty() => {
                        let (a, b) = live[rng.gen_range(0..live.len())];
                        batch.push(DynUpdate::Delete(a, b));
                    }
                    _ => batch.push(DynUpdate::Query(u, v)),
                }
            }
            // Maintain the reference edge multiset and compare answers.
            let mut reference_edges: std::collections::HashSet<u64> =
                live.iter().map(|&(a, b)| canon(a, b)).collect();
            let mut expected = Vec::new();
            for &op in &batch {
                match op {
                    DynUpdate::Insert(u, v) => {
                        if u != v {
                            reference_edges.insert(canon(u, v));
                        }
                    }
                    DynUpdate::Delete(u, v) => {
                        reference_edges.remove(&canon(u, v));
                    }
                    DynUpdate::Query(u, v) => {
                        let mut uf = SeqUnionFind::new(n);
                        for &e in &reference_edges {
                            uf.union((e >> 32) as u32, e as u32);
                        }
                        expected.push(uf.connected(u, v));
                    }
                }
            }
            let got = d.process_batch(&batch);
            assert_eq!(got, expected);
            live = reference_edges.iter().map(|&e| ((e >> 32) as u32, e as u32)).collect();
        }
        // Final partition agreement.
        let expect = oracle_labels(n, &live);
        assert!(same_partition(&expect, &d.labels()));
    }
}
