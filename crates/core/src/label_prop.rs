//! Folklore label propagation (Section B.2.6): frontier-based min-label
//! spreading, the algorithm most graph systems (Pregel, Giraph, Galois,
//! Ligra) implement for connectivity.

use crate::minkey::MinKey;
use cc_graph::{CsrGraph, VertexId};
use cc_parallel::{pack_indices, parallel_for_chunks, parallel_tabulate};
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

/// Runs label propagation from sampled `initial` labels under the keyed
/// order making `frequent` minimal. Vertices of the frequent component are
/// never activated; their label reaches neighbors through the symmetric
/// pull applied from the live side.
pub fn label_propagation_finish(
    g: &CsrGraph,
    initial: &[VertexId],
    frequent: VertexId,
) -> Vec<VertexId> {
    let n = g.num_vertices();
    let key = MinKey::new(frequent);
    let labels: Vec<AtomicU32> = parallel_tabulate(n, |v| AtomicU32::new(initial[v]));
    // Initial frontier: every vertex outside the frequent component.
    let mut frontier: Vec<VertexId> = pack_indices(n, |v| initial[v] != frequent);
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        debug_assert!(rounds <= n + 1, "label propagation failed to converge");
        let changed: Vec<AtomicU8> = parallel_tabulate(n, |_| AtomicU8::new(0));
        parallel_for_chunks(frontier.len(), |r| {
            for i in r {
                let u = frontier[i];
                let lu = labels[u as usize].load(Ordering::Acquire);
                for &v in g.neighbors(u) {
                    // Push our label to the neighbor...
                    if key.write_min(&labels[v as usize], lu) {
                        changed[v as usize].store(1, Ordering::Relaxed);
                    }
                    // ...and pull the neighbor's label (this is what lets a
                    // skipped frequent vertex infect its boundary).
                    let lv = labels[v as usize].load(Ordering::Acquire);
                    if key.write_min(&labels[u as usize], lv) {
                        changed[u as usize].store(1, Ordering::Relaxed);
                    }
                }
            }
        });
        frontier = pack_indices(n, |v| changed[v].load(Ordering::Relaxed) == 1);
    }
    cc_parallel::snapshot_u32(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators::{grid2d, path, rmat_default};
    use cc_graph::stats::{component_stats, same_partition};
    use cc_graph::{build_undirected, NO_VERTEX};

    fn identity(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn lp_solves_path() {
        let g = path(200);
        let got = label_propagation_finish(&g, &identity(200), NO_VERTEX);
        assert!(got.iter().all(|&l| l == 0));
    }

    #[test]
    fn lp_solves_grid_and_rmat() {
        let g = grid2d(30, 30);
        let got = label_propagation_finish(&g, &identity(900), NO_VERTEX);
        assert!(same_partition(&component_stats(&g).labels, &got));

        let el = rmat_default(11, 7_000, 2);
        let g2 = build_undirected(el.num_vertices, &el.edges);
        let got2 = label_propagation_finish(&g2, &identity(g2.num_vertices()), NO_VERTEX);
        assert!(same_partition(&component_stats(&g2).labels, &got2));
    }

    #[test]
    fn lp_frequent_component_label_wins() {
        // One component; frequent = 3 (not the numeric minimum).
        let g = build_undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let initial = vec![0, 1, 2, 3, 3];
        let got = label_propagation_finish(&g, &initial, 3);
        assert!(got.iter().all(|&l| l == 3), "{got:?}");
    }

    #[test]
    fn lp_respects_components() {
        let g = build_undirected(6, &[(0, 1), (2, 3), (4, 5)]);
        let got = label_propagation_finish(&g, &identity(6), NO_VERTEX);
        assert_eq!(got, vec![0, 0, 2, 2, 4, 4]);
    }
}
