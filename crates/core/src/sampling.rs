//! The sampling phase (Section 3.2, Algorithms 4–6): k-out, BFS, and LDD
//! sampling, plus the `IDENTIFYFREQUENT` step of Algorithm 1.
//!
//! Every sampler produces a labeling satisfying Definition 3.1: each vertex
//! either labels itself or points at a root that labels itself — i.e. a
//! forest of depth-1 trees encoding a *partial* connectivity labeling.

use crate::forest::ForestBuf;
use crate::options::{KOutVariant, SamplingMethod};
use cc_graph::bfs::bfs;
use cc_graph::ldd::ldd;
use cc_graph::{CsrGraph, VertexId, NO_VERTEX};
use cc_parallel::{parallel_for, parallel_max_index, parallel_tabulate};
use cc_unionfind::{make_parents, snapshot_labels, FastestKernel, NoCount, UniteKernel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU32, Ordering};

/// Output of the sampling phase.
pub struct SampleOutcome {
    /// Partial connectivity labeling satisfying Definition 3.1.
    pub labels: Vec<VertexId>,
    /// The most frequent label (`L_max`), or [`NO_VERTEX`] when the finish
    /// phase should not skip anything (no sampling / degenerate sample).
    pub frequent: VertexId,
    /// Multiplicity of `frequent` (vertex coverage of the sampled giant).
    pub frequent_count: usize,
    /// Partial spanning forest, present when requested.
    pub forest: Option<ForestBuf>,
}

impl SampleOutcome {
    /// After normalizing labels to cluster minima, the free forest slot of
    /// each cluster must move from the old center to the new (minimum)
    /// root: the minimum's sampled tree edge is re-assigned to the center's
    /// previously free slot. `is_center(v)` identifies pre-normalization
    /// roots.
    fn rehome_forest_slots(
        forest: &ForestBuf,
        normalized: &[VertexId],
        is_center: impl Fn(usize) -> bool + Sync,
    ) {
        parallel_for(normalized.len(), |c| {
            if is_center(c) {
                let m = normalized[c];
                if m != c as VertexId {
                    if let Some((a, b)) = forest.take(m) {
                        forest.assign(c as VertexId, a, b);
                    }
                }
            }
        });
    }

    fn identity(n: usize, want_forest: bool) -> Self {
        SampleOutcome {
            labels: (0..n as u32).collect(),
            frequent: NO_VERTEX,
            frequent_count: 0,
            forest: want_forest.then(|| ForestBuf::new(n)),
        }
    }
}

/// Remaps a partial labeling so every cluster is labeled by its *minimum*
/// member. BFS and LDD label clusters by their (arbitrary-id) source or
/// center, which breaks the `parent <= self` invariant the root-based
/// finish methods maintain for acyclicity; normalizing restores it without
/// changing the partition. (k-out output is already min-labeled: its
/// union-find links higher ids below lower ids.)
pub fn normalize_labels_to_min(labels: &mut [VertexId]) {
    let n = labels.len();
    let mins: Vec<AtomicU32> = parallel_tabulate(n, |_| AtomicU32::new(u32::MAX));
    parallel_for(n, |v| {
        cc_parallel::write_min_u32(&mins[labels[v] as usize], v as u32);
    });
    let remapped: Vec<VertexId> =
        parallel_tabulate(n, |v| mins[labels[v] as usize].load(Ordering::Relaxed));
    labels.copy_from_slice(&remapped);
}

/// Finds the most frequent label and its multiplicity via an exact parallel
/// histogram (labels are root vertex ids, so `n` buckets suffice).
pub fn identify_frequent(labels: &[VertexId]) -> (VertexId, usize) {
    let n = labels.len();
    if n == 0 {
        return (NO_VERTEX, 0);
    }
    let counts: Vec<AtomicU32> = parallel_tabulate(n, |_| AtomicU32::new(0));
    parallel_for(n, |v| {
        counts[labels[v] as usize].fetch_add(1, Ordering::Relaxed);
    });
    let idx =
        parallel_max_index(n, |i| counts[i].load(Ordering::Relaxed)).expect("nonempty labels");
    (idx as VertexId, counts[idx].load(Ordering::Relaxed) as usize)
}

/// Runs the configured sampling method. `want_forest` additionally emits
/// the partial spanning forest (Definition B.2).
pub fn run_sampling(
    g: &CsrGraph,
    method: &SamplingMethod,
    seed: u64,
    want_forest: bool,
) -> SampleOutcome {
    let n = g.num_vertices();
    match *method {
        SamplingMethod::None => SampleOutcome::identity(n, want_forest),
        SamplingMethod::KOut { k, variant } => kout_sample(g, k, variant, seed, want_forest),
        SamplingMethod::Bfs { tries } => bfs_sample(g, tries, seed, want_forest),
        SamplingMethod::Ldd { beta, permute } => ldd_sample(g, beta, permute, seed, want_forest),
    }
}

/// k-out sampling (Algorithm 4): contract `k` selected edges per vertex
/// with the fastest union-find, then fully compress.
fn kout_sample(
    g: &CsrGraph,
    k: usize,
    variant: KOutVariant,
    seed: u64,
    want_forest: bool,
) -> SampleOutcome {
    let n = g.num_vertices();
    let parents = make_parents(n);
    // The sampler's variant is fixed (the paper's fastest), so the kernel
    // is named at compile time — no dispatch, no virtual calls.
    let uf = FastestKernel::build(n, seed);
    let forest = want_forest.then(|| ForestBuf::new(n));
    let forest_ref = forest.as_ref();
    parallel_for(n, |vi| {
        let v = vi as VertexId;
        let nbrs = g.neighbors(v);
        if nbrs.is_empty() || k == 0 {
            return;
        }
        let apply = |w: VertexId| {
            if let Some(hooked) = uf.unite(&parents, v, w, &mut NoCount) {
                if let Some(f) = forest_ref {
                    f.assign(hooked, v, w);
                }
            }
        };
        // Per-vertex SplitMix64: seeding a cryptographic generator per
        // vertex would dominate the entire sampling phase.
        let mut rng =
            cc_parallel::SplitMix64::new(seed ^ (vi as u64).wrapping_mul(0xA24BAED4963EE407));
        match variant {
            KOutVariant::Afforest => {
                for &w in nbrs.iter().take(k) {
                    apply(w);
                }
            }
            KOutVariant::Pure => {
                for _ in 0..k {
                    apply(nbrs[rng.gen_range(nbrs.len())]);
                }
            }
            KOutVariant::Hybrid => {
                apply(nbrs[0]);
                for _ in 1..k {
                    apply(nbrs[rng.gen_range(nbrs.len())]);
                }
            }
            KOutVariant::MaxDegree => {
                let best = nbrs.iter().copied().max_by_key(|&w| g.degree(w)).expect("nonempty");
                apply(best);
                for _ in 1..k {
                    apply(nbrs[rng.gen_range(nbrs.len())]);
                }
            }
        }
    });
    let labels = snapshot_labels(&parents);
    let (frequent, frequent_count) = identify_frequent(&labels);
    SampleOutcome { labels, frequent, frequent_count, forest }
}

/// BFS sampling (Algorithm 5): explore from up to `tries` random sources;
/// accept the first component covering more than 10% of the vertices.
fn bfs_sample(g: &CsrGraph, tries: usize, seed: u64, want_forest: bool) -> SampleOutcome {
    let n = g.num_vertices();
    if n == 0 {
        return SampleOutcome::identity(n, want_forest);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..tries.max(1) {
        let src = rng.gen_range(0..n) as VertexId;
        let res = bfs(g, src);
        if res.num_visited * 10 > n {
            let parents = res.parents;
            let mut labels: Vec<VertexId> =
                parallel_tabulate(n, |v| if parents[v] != NO_VERTEX { src } else { v as VertexId });
            normalize_labels_to_min(&mut labels);
            let frequent = labels[src as usize];
            let parents_ref = &parents;
            let forest = want_forest.then(|| {
                let f = ForestBuf::new(n);
                parallel_for(n, |v| {
                    let p = parents_ref[v];
                    if p != NO_VERTEX && v as VertexId != src {
                        // Tree edge (parent, child) assigned to the child.
                        f.assign(v as VertexId, p, v as VertexId);
                    }
                });
                // Pre-normalization roots: the BFS source and every
                // unreached vertex.
                SampleOutcome::rehome_forest_slots(&f, &labels, |v| {
                    v as VertexId == src || parents_ref[v] == NO_VERTEX
                });
                f
            });
            return SampleOutcome { frequent, frequent_count: res.num_visited, labels, forest };
        }
    }
    // No massive component found: fall back to the identity labeling.
    SampleOutcome::identity(n, want_forest)
}

/// LDD sampling (Algorithm 6): one decomposition round; the most frequent
/// cluster stands in for the massive component.
fn ldd_sample(
    g: &CsrGraph,
    beta: f64,
    permute: bool,
    seed: u64,
    want_forest: bool,
) -> SampleOutcome {
    let n = g.num_vertices();
    if n == 0 {
        return SampleOutcome::identity(n, want_forest);
    }
    let res = ldd(g, beta, permute, seed);
    let mut labels = res.labels;
    let pre = labels.clone();
    normalize_labels_to_min(&mut labels);
    let forest = want_forest.then(|| {
        let f = ForestBuf::new(n);
        parallel_for(n, |v| {
            let p = res.parents[v];
            if p != v as VertexId {
                f.assign(v as VertexId, p, v as VertexId);
            }
        });
        // Pre-normalization roots are the LDD cluster centers.
        SampleOutcome::rehome_forest_slots(&f, &labels, |v| pre[v] == v as VertexId);
        f
    });
    let (frequent, frequent_count) = identify_frequent(&labels);
    SampleOutcome { labels, frequent, frequent_count, forest }
}

/// Counts directed edges whose endpoints carry different sampled labels —
/// the "inter-component edges remaining" metric of Tables 6–7.
pub fn inter_component_edges(g: &CsrGraph, labels: &[VertexId]) -> usize {
    cc_graph::ldd::inter_cluster_edges(g, labels)
}

/// Checks Definition 3.1 structurally: every label is either the vertex
/// itself or a self-labeled root.
pub fn satisfies_sampling_contract(labels: &[VertexId]) -> bool {
    cc_parallel::parallel_count(labels.len(), |v| {
        let l = labels[v] as usize;
        l == v || labels[l] == labels[v]
    }) == labels.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::build_undirected;
    use cc_graph::generators::{clustered_web, grid2d, rmat_default};

    fn rmat_graph() -> CsrGraph {
        let el = rmat_default(12, 40_000, 33);
        build_undirected(el.num_vertices, &el.edges)
    }

    #[test]
    fn identify_frequent_majority() {
        let labels = vec![2, 2, 2, 3, 4, 2];
        assert_eq!(identify_frequent(&labels), (2, 4));
    }

    #[test]
    fn normalization_relabels_by_minimum() {
        // Cluster {0,1,2} labeled by 2, cluster {3,4} labeled by 4.
        let mut labels = vec![2, 2, 2, 4, 4];
        normalize_labels_to_min(&mut labels);
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn sampled_labels_are_min_normalized() {
        // The root-based finish methods rely on parent <= self; every
        // sampler must emit min-labeled clusters.
        let g = grid2d(40, 40);
        for method in [
            SamplingMethod::kout_default(),
            SamplingMethod::bfs_default(),
            SamplingMethod::ldd_default(),
            SamplingMethod::Ldd { beta: 0.3, permute: true },
        ] {
            let out = run_sampling(&g, &method, 21, false);
            assert!(
                out.labels.iter().enumerate().all(|(v, &l)| (l as usize) <= v),
                "{} emitted a non-minimal cluster label",
                method.name()
            );
        }
    }

    #[test]
    fn union_early_with_ldd_regression() {
        // Regression: LDD centers with ids above their members used to let
        // Union-Early hook a root beneath its own descendant (parent
        // cycle, infinite find). Must terminate and be correct.
        use cc_unionfind::{FindKind, UfSpec, UniteKind};
        let g = grid2d(50, 50);
        let spec = UfSpec::new(UniteKind::Early, FindKind::Naive);
        for seed in 0..5u64 {
            let labels = crate::connectivity_seeded(
                &g,
                &SamplingMethod::Ldd { beta: 0.2, permute: true },
                &crate::FinishMethod::UnionFind(spec),
                seed,
            );
            assert!(labels.iter().all(|&l| l == labels[0]), "seed {seed}");
        }
    }

    #[test]
    fn all_samplers_satisfy_contract() {
        let g = rmat_graph();
        for method in [
            SamplingMethod::kout_default(),
            SamplingMethod::bfs_default(),
            SamplingMethod::ldd_default(),
            SamplingMethod::KOut { k: 3, variant: KOutVariant::Pure },
            SamplingMethod::KOut { k: 1, variant: KOutVariant::Afforest },
            SamplingMethod::KOut { k: 2, variant: KOutVariant::MaxDegree },
            SamplingMethod::Ldd { beta: 0.5, permute: true },
        ] {
            let out = run_sampling(&g, &method, 7, false);
            assert!(
                satisfies_sampling_contract(&out.labels),
                "{} violates Definition 3.1",
                method.name()
            );
        }
    }

    #[test]
    fn sampled_labels_are_partial_connectivity() {
        // Sampled labels must never merge vertices from different true
        // components.
        let g = build_undirected(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]);
        for method in [
            SamplingMethod::kout_default(),
            SamplingMethod::bfs_default(),
            SamplingMethod::ldd_default(),
        ] {
            let out = run_sampling(&g, &method, 3, false);
            for v in 0..4usize {
                for w in 4..8usize {
                    assert_ne!(out.labels[v], out.labels[w], "{}", method.name());
                }
            }
        }
    }

    #[test]
    fn bfs_sampling_finds_giant_component() {
        let g = grid2d(60, 60);
        let out = run_sampling(&g, &SamplingMethod::bfs_default(), 1, false);
        assert_eq!(out.frequent_count, 3600);
        assert_eq!(inter_component_edges(&g, &out.labels), 0);
    }

    #[test]
    fn kout_hybrid_beats_afforest_on_clustered_web() {
        // The headline of Figures 22–24: first-k sampling discovers only
        // the local blocks on adversarially ordered graphs; hybrid escapes.
        let el = clustered_web(200, 32, 6, 0.4, 9);
        let g = cc_graph::builder::build_undirected_ordered(el.num_vertices, &el.edges);
        let aff = run_sampling(
            &g,
            &SamplingMethod::KOut { k: 2, variant: KOutVariant::Afforest },
            5,
            false,
        );
        let hyb = run_sampling(
            &g,
            &SamplingMethod::KOut { k: 2, variant: KOutVariant::Hybrid },
            5,
            false,
        );
        assert!(
            hyb.frequent_count > aff.frequent_count * 2,
            "hybrid {} vs afforest {}",
            hyb.frequent_count,
            aff.frequent_count
        );
    }

    #[test]
    fn kout_forest_edges_match_contraction() {
        let g = rmat_graph();
        let out = run_sampling(&g, &SamplingMethod::kout_default(), 11, true);
        let forest = out.forest.expect("requested");
        let edges = forest.to_edges();
        // Forest edges must induce exactly the sampled partition
        // (Definition B.2 requirement 2).
        let induced = cc_unionfind::oracle_labels(g.num_vertices(), &edges);
        assert!(cc_graph::stats::same_partition(&induced, &out.labels));
    }

    #[test]
    fn no_sampling_is_identity() {
        let g = grid2d(5, 5);
        let out = run_sampling(&g, &SamplingMethod::None, 0, false);
        assert_eq!(out.frequent, NO_VERTEX);
        assert!(out.labels.iter().enumerate().all(|(i, &l)| l == i as u32));
    }
}
