//! The label-order remapping that lets non-root-based min-based algorithms
//! (Liu–Tarjan, Stergiou, Label-Propagation) skip the sampled giant
//! component.
//!
//! The paper relabels the most frequent component "to have the smallest
//! possible ID" so the min operator can never move its vertices
//! (Section 3.3.2, Theorem 4). We realize the same total order without
//! renumbering vertices: comparisons go through a key function under which
//! the frequent label sorts below every other label.

use cc_graph::{VertexId, NO_VERTEX};
use std::sync::atomic::{AtomicU32, Ordering};

/// A total order on vertex labels in which `frequent` is the global
/// minimum. With `frequent == NO_VERTEX` this is the plain id order.
#[derive(Clone, Copy, Debug)]
pub struct MinKey {
    frequent: VertexId,
}

impl MinKey {
    /// Order with `frequent` as the minimum.
    pub fn new(frequent: VertexId) -> Self {
        MinKey { frequent }
    }

    /// Plain id order.
    pub fn plain() -> Self {
        MinKey { frequent: NO_VERTEX }
    }

    /// The rank of `x` in this order.
    #[inline]
    pub fn key(&self, x: VertexId) -> u64 {
        if x == self.frequent {
            0
        } else {
            u64::from(x) + 1
        }
    }

    /// True iff `a` sorts strictly below `b`.
    #[inline]
    pub fn less(&self, a: VertexId, b: VertexId) -> bool {
        self.key(a) < self.key(b)
    }

    /// `writeMin` under this order: atomically lowers `*loc` to `val` if
    /// `val` sorts below the current value; returns whether it did.
    #[inline]
    pub fn write_min(&self, loc: &AtomicU32, val: VertexId) -> bool {
        let mut cur = loc.load(Ordering::Relaxed);
        while self.less(val, cur) {
            match loc.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_order_is_id_order() {
        let k = MinKey::plain();
        assert!(k.less(3, 5));
        assert!(!k.less(5, 3));
        assert!(!k.less(4, 4));
    }

    #[test]
    fn frequent_is_global_minimum() {
        let k = MinKey::new(100);
        assert!(k.less(100, 0));
        assert!(!k.less(0, 100));
        assert!(k.less(1, 2));
    }

    #[test]
    fn write_min_respects_key_order() {
        let k = MinKey::new(7);
        let loc = AtomicU32::new(3);
        assert!(!k.write_min(&loc, 5)); // 5 above 3
        assert!(k.write_min(&loc, 2));
        assert!(k.write_min(&loc, 7)); // frequent beats everything
        assert!(!k.write_min(&loc, 0));
        assert_eq!(loc.load(Ordering::Relaxed), 7);
    }
}
