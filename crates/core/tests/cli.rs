//! End-to-end tests of the `connectit` CLI binary: generate → stats →
//! cc → forest round trips through real process invocations.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_connectit"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("connectit_cli_test_{}_{name}", std::process::id()))
}

#[test]
fn gen_stats_cc_forest_roundtrip() {
    let el = tmp("g.el");
    let labels = tmp("labels.txt");
    let forest = tmp("forest.el");

    // gen
    let out = cli()
        .args(["gen", "rmat", "10", "-o", el.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // stats
    let out = cli().args(["stats", el.to_str().expect("utf8")]).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("n 1024"), "{stdout}");
    let components: usize = stdout
        .lines()
        .find_map(|l| l.strip_prefix("components "))
        .expect("components line")
        .parse()
        .expect("number");

    // cc: label count must equal n; distinct labels must equal components.
    let out = cli()
        .args([
            "cc",
            el.to_str().expect("utf8"),
            "--sampling",
            "kout",
            "--finish",
            "rem-cas",
            "-o",
            labels.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&labels).expect("labels written");
    let mut distinct: Vec<&str> =
        text.lines().map(|l| l.split_whitespace().nth(1).expect("label")).collect();
    assert_eq!(distinct.len(), 1024);
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(distinct.len(), components);

    // forest: n - components edges.
    let out = cli()
        .args(["forest", el.to_str().expect("utf8"), "-o", forest.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let forest_edges = std::fs::read_to_string(&forest).expect("forest written");
    assert_eq!(forest_edges.lines().count(), 1024 - components);

    for f in [el, labels, forest] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn cc_agrees_across_configurations() {
    let el = tmp("g2.el");
    let out = cli()
        .args(["gen", "grid", "12", "-o", el.to_str().expect("utf8")])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let mut label_sets = Vec::new();
    for (s, f) in [("none", "rem-cas"), ("bfs", "lp"), ("ldd", "sv"), ("kout", "lt")] {
        let out = cli()
            .args(["cc", el.to_str().expect("utf8"), "--sampling", s, "--finish", f])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{s}+{f}");
        let labels: Vec<u32> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| l.split_whitespace().nth(1).expect("label").parse().expect("u32"))
            .collect();
        label_sets.push(labels);
    }
    for w in label_sets.windows(2) {
        assert!(cc_graph::stats::same_partition(&w[0], &w[1]));
    }
    let _ = std::fs::remove_file(el);
}

#[test]
fn bad_input_fails_cleanly() {
    let out = cli().args(["cc", "/nonexistent/file.el"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
