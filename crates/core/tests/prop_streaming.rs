//! Property-based linearizability tests for Type (i) streaming: mixed
//! insert/query batches over every wait-free union-find variant, checked
//! against the sequential oracle by *bracketing*.
//!
//! Connectivity is monotone (no deletions), so for a query inside a batch
//! there are exactly two cases against the oracle state before/after that
//! batch's insertions:
//!
//! - stable (`before == after`): every linearization of the batch gives
//!   the same answer, so the structure's answer is forced;
//! - transition (`false` before, `true` after): the query may legally be
//!   linearized on either side of the merging insertions, so both answers
//!   are accepted.
//!
//! Batches run on the real thread pool, so these cases also exercise true
//! concurrent interleavings of `unite` and the root-recheck query loop.

use cc_graph::stats::same_partition;
use cc_unionfind::{SeqUnionFind, UfSpec};
use connectit::{StreamAlgorithm, StreamType, StreamingConnectivity, Update};
use proptest::prelude::*;

/// All union-find variants whose finds may run concurrently with unions
/// (paper Type (i)) — everything except Rem + `SpliceAtomic`.
fn wait_free_variants() -> Vec<UfSpec> {
    UfSpec::all_variants()
        .into_iter()
        .filter(|spec| {
            StreamingConnectivity::new(2, &StreamAlgorithm::UnionFind(*spec), 1).stream_type()
                == StreamType::WaitFree
        })
        .collect()
}

/// Strategy: vertex count, a flat op script over it, a batch size to cut
/// the script into, and an index selecting the union-find variant.
#[allow(clippy::type_complexity)]
fn arb_case() -> impl Strategy<Value = (usize, Vec<(bool, u32, u32)>, usize, usize)> {
    (2usize..80).prop_flat_map(|n| {
        let op = (any::<bool>(), 0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(op, 1..250), 1usize..40, 0usize..1000)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn type_i_mixed_batches_are_linearizable(
        (n, script, batch_size, variant_pick) in arb_case(),
    ) {
        let variants = wait_free_variants();
        let spec = variants[variant_pick % variants.len()];
        let s = StreamingConnectivity::new(n, &StreamAlgorithm::UnionFind(spec), 11);
        let mut oracle = SeqUnionFind::new(n);
        for chunk in script.chunks(batch_size) {
            let batch: Vec<Update> = chunk
                .iter()
                .map(|&(q, u, v)| if q { Update::Query(u, v) } else { Update::Insert(u, v) })
                .collect();
            let before: Vec<bool> = chunk
                .iter()
                .filter(|&&(q, ..)| q)
                .map(|&(_, u, v)| oracle.connected(u, v))
                .collect();
            let answers = s.process_batch(&batch);
            prop_assert_eq!(answers.len(), before.len());
            for &(q, u, v) in chunk {
                if !q {
                    oracle.union(u, v);
                }
            }
            for (qi, (&(_, u, v), got)) in chunk
                .iter()
                .filter(|&&(q, ..)| q)
                .zip(&answers)
                .enumerate()
            {
                let was = before[qi];
                let now = oracle.connected(u, v);
                if was == now {
                    prop_assert_eq!(
                        *got,
                        was,
                        "query({}, {}) answered {} but the oracle says {} on both sides \
                         of the batch ({})",
                        u,
                        v,
                        got,
                        was,
                        spec.name()
                    );
                } else {
                    prop_assert!(!was && now, "connectivity regressed in the oracle");
                }
            }
        }
        // After the full script the partitions must agree exactly.
        prop_assert!(
            same_partition(&oracle.labels(), &s.labels()),
            "final partition diverged for {}",
            spec.name()
        );
    }

    #[test]
    fn accessors_agree_with_oracle_between_batches(
        (n, script, batch_size, variant_pick) in arb_case(),
    ) {
        let variants = wait_free_variants();
        let spec = variants[variant_pick % variants.len()];
        let s = StreamingConnectivity::new(n, &StreamAlgorithm::UnionFind(spec), 3);
        let mut oracle = SeqUnionFind::new(n);
        for chunk in script.chunks(batch_size) {
            let batch: Vec<Update> = chunk
                .iter()
                .filter(|&&(q, ..)| !q)
                .map(|&(_, u, v)| Update::Insert(u, v))
                .collect();
            s.process_batch(&batch);
            for &(q, u, v) in chunk {
                if !q {
                    oracle.union(u, v);
                }
            }
        }
        // Quiescent: the cheap accessors must be exact.
        prop_assert_eq!(s.num_components(), oracle.num_components());
        for v in 0..n as u32 {
            prop_assert_eq!(
                s.current_label(v) == s.current_label(0),
                oracle.connected(v, 0)
            );
        }
        prop_assert!(same_partition(&oracle.labels(), &s.labels_readonly()));
    }
}
