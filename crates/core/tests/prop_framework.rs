//! Property-based tests over the whole framework: random graphs, random
//! variant choices, random batch splits — the partition must always match
//! the sequential oracle and forests must always be valid.

use cc_graph::build_undirected;
use cc_graph::stats::same_partition;
use cc_unionfind::{oracle_labels, UfSpec};
use connectit::{
    connectivity_seeded, is_valid_spanning_forest, spanning_forest, FinishMethod, LtScheme,
    SamplingMethod, StreamAlgorithm, StreamingConnectivity, Update,
};
use proptest::prelude::*;

/// Strategy: a random small graph as (n, edges).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..120).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..300))
    })
}

fn arb_finish() -> impl Strategy<Value = FinishMethod> {
    let ufs = UfSpec::all_variants();
    let lts = LtScheme::all_schemes();
    (0usize..(ufs.len() + lts.len() + 3)).prop_map(move |i| {
        if i < ufs.len() {
            FinishMethod::UnionFind(ufs[i])
        } else if i < ufs.len() + lts.len() {
            FinishMethod::LiuTarjan(lts[i - ufs.len()])
        } else {
            match i - ufs.len() - lts.len() {
                0 => FinishMethod::ShiloachVishkin,
                1 => FinishMethod::Stergiou,
                _ => FinishMethod::LabelPropagation,
            }
        }
    })
}

fn arb_sampling() -> impl Strategy<Value = SamplingMethod> {
    prop_oneof![
        Just(SamplingMethod::None),
        (1usize..5, 0usize..4)
            .prop_map(|(k, v)| SamplingMethod::KOut { k, variant: connectit::KOutVariant::ALL[v] }),
        (1usize..4).prop_map(|tries| SamplingMethod::Bfs { tries }),
        (1u32..10, any::<bool>())
            .prop_map(|(b, p)| SamplingMethod::Ldd { beta: b as f64 / 10.0, permute: p }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn connectivity_matches_oracle(
        (n, edges) in arb_graph(),
        finish in arb_finish(),
        sampling in arb_sampling(),
        seed in any::<u64>(),
    ) {
        let g = build_undirected(n, &edges);
        let expect = oracle_labels(n, &edges);
        let got = connectivity_seeded(&g, &sampling, &finish, seed);
        prop_assert!(
            same_partition(&expect, &got),
            "{} + {}", sampling.name(), finish.name()
        );
    }

    #[test]
    fn spanning_forest_always_valid(
        (n, edges) in arb_graph(),
        sampling in arb_sampling(),
        seed in any::<u64>(),
    ) {
        let g = build_undirected(n, &edges);
        let f = spanning_forest(&g, &sampling, &FinishMethod::fastest(), seed);
        prop_assert!(is_valid_spanning_forest(&g, &f));
    }

    #[test]
    fn streaming_matches_static(
        (n, edges) in arb_graph(),
        batch_size in 1usize..64,
        seed in any::<u64>(),
    ) {
        let expect = oracle_labels(n, &edges);
        for alg in [
            StreamAlgorithm::UnionFind(UfSpec::fastest()),
            StreamAlgorithm::ShiloachVishkin,
            StreamAlgorithm::LiuTarjan(LtScheme::crfa()),
        ] {
            let s = StreamingConnectivity::new(n, &alg, seed);
            for chunk in edges.chunks(batch_size) {
                let batch: Vec<Update> =
                    chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
                s.process_batch(&batch);
            }
            prop_assert!(same_partition(&expect, &s.labels()), "{}", alg.name());
        }
    }

    #[test]
    fn sampling_contract_random_graphs(
        (n, edges) in arb_graph(),
        sampling in arb_sampling(),
        seed in any::<u64>(),
    ) {
        let g = build_undirected(n, &edges);
        let out = connectit::run_sampling(&g, &sampling, seed, false);
        prop_assert!(connectit::sampling::satisfies_sampling_contract(&out.labels));
        // Partial labeling: never merges true components.
        let truth = oracle_labels(n, &edges);
        for v in 0..n {
            let l = out.labels[v] as usize;
            prop_assert_eq!(truth[v], truth[l], "sample merged distinct components");
        }
    }
}
