//! End-to-end correctness: every finish method x every sampling method must
//! reproduce the oracle partition on structurally diverse graphs.

use cc_graph::generators::{clustered_web, grid2d, path, rmat_default, star};
use cc_graph::stats::{component_stats, same_partition};
use cc_graph::{build_undirected, CsrGraph};
use cc_unionfind::UfSpec;
use connectit::{connectivity_seeded, FinishMethod, LtScheme, SamplingMethod};

fn every_finish_method() -> Vec<FinishMethod> {
    let mut out: Vec<FinishMethod> =
        UfSpec::all_variants().into_iter().map(FinishMethod::UnionFind).collect();
    out.push(FinishMethod::ShiloachVishkin);
    out.extend(LtScheme::all_schemes().into_iter().map(FinishMethod::LiuTarjan));
    out.push(FinishMethod::Stergiou);
    out.push(FinishMethod::LabelPropagation);
    out
}

fn every_sampling_method() -> Vec<SamplingMethod> {
    vec![
        SamplingMethod::None,
        SamplingMethod::kout_default(),
        SamplingMethod::bfs_default(),
        SamplingMethod::ldd_default(),
    ]
}

fn check_graph(g: &CsrGraph, tag: &str) {
    let expect = component_stats(g).labels;
    for sampling in every_sampling_method() {
        for finish in every_finish_method() {
            let got = connectivity_seeded(g, &sampling, &finish, 1234);
            assert!(
                same_partition(&expect, &got),
                "{tag}: {} + {}",
                sampling.name(),
                finish.name()
            );
        }
    }
}

#[test]
fn matrix_rmat_social() {
    let el = rmat_default(10, 6_000, 11);
    check_graph(&build_undirected(el.num_vertices, &el.edges), "rmat");
}

#[test]
fn matrix_grid_high_diameter() {
    check_graph(&grid2d(24, 24), "grid");
}

#[test]
fn matrix_multi_component() {
    // Several medium components + isolated vertices.
    let a = rmat_default(8, 1_200, 3);
    let b = rmat_default(7, 500, 4);
    let el = cc_graph::generators::disjoint_union(&[a, b, cc_graph::EdgeList::new(10, vec![])]);
    check_graph(&build_undirected(el.num_vertices, &el.edges), "multi");
}

#[test]
fn matrix_clustered_web_ordered() {
    let el = clustered_web(30, 16, 3, 0.3, 2);
    let g = cc_graph::builder::build_undirected_ordered(el.num_vertices, &el.edges);
    // Only a representative subset here (the ordered adjacency is the
    // interesting part; the full matrix runs above).
    let expect = component_stats(&g).labels;
    for sampling in every_sampling_method() {
        for finish in [
            FinishMethod::fastest(),
            FinishMethod::ShiloachVishkin,
            FinishMethod::LiuTarjan(LtScheme::crfa()),
            FinishMethod::LabelPropagation,
        ] {
            let got = connectivity_seeded(&g, &sampling, &finish, 7);
            assert!(same_partition(&expect, &got), "{} + {}", sampling.name(), finish.name());
        }
    }
}

#[test]
fn degenerate_graphs() {
    for g in [CsrGraph::empty(0), CsrGraph::empty(1), CsrGraph::empty(100), path(2), star(3)] {
        let expect = component_stats(&g).labels;
        for finish in [
            FinishMethod::fastest(),
            FinishMethod::ShiloachVishkin,
            FinishMethod::LiuTarjan(LtScheme::crfa()),
            FinishMethod::Stergiou,
            FinishMethod::LabelPropagation,
        ] {
            for sampling in every_sampling_method() {
                let got = connectivity_seeded(&g, &sampling, &finish, 0);
                assert!(
                    same_partition(&expect, &got),
                    "n={} {} + {}",
                    g.num_vertices(),
                    sampling.name(),
                    finish.name()
                );
            }
        }
    }
}

#[test]
fn different_seeds_same_partition() {
    let el = rmat_default(10, 5_000, 9);
    let g = build_undirected(el.num_vertices, &el.edges);
    let expect = component_stats(&g).labels;
    for seed in [0u64, 1, 99, u64::MAX] {
        for sampling in every_sampling_method() {
            let got = connectivity_seeded(&g, &sampling, &FinishMethod::fastest(), seed);
            assert!(same_partition(&expect, &got), "seed {seed} {}", sampling.name());
        }
    }
}

#[test]
fn kout_parameter_sweep_correctness() {
    let el = rmat_default(10, 4_000, 21);
    let g = build_undirected(el.num_vertices, &el.edges);
    let expect = component_stats(&g).labels;
    for k in [1usize, 2, 3, 5] {
        for variant in connectit::KOutVariant::ALL {
            let sampling = SamplingMethod::KOut { k, variant };
            let got = connectivity_seeded(&g, &sampling, &FinishMethod::fastest(), 5);
            assert!(same_partition(&expect, &got), "k={k} {}", variant.name());
        }
    }
}

#[test]
fn ldd_parameter_sweep_correctness() {
    let g = grid2d(30, 30);
    let expect = component_stats(&g).labels;
    for beta in [0.05, 0.2, 0.5, 1.0] {
        for permute in [false, true] {
            let sampling = SamplingMethod::Ldd { beta, permute };
            let got = connectivity_seeded(&g, &sampling, &FinishMethod::fastest(), 3);
            assert!(same_partition(&expect, &got), "beta={beta} permute={permute}");
        }
    }
}
