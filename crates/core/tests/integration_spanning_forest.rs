//! Spanning forest end-to-end: every supported finish x sampling
//! combination must produce a valid spanning forest (acyclic, real edges,
//! spans every component with exactly n - #components edges).

use cc_graph::build_undirected;
use cc_graph::generators::{disjoint_union, grid2d, rmat_default};
use cc_unionfind::{SpliceKind, UfSpec};
use connectit::{
    is_valid_spanning_forest, spanning_forest, supports_spanning_forest, FinishMethod,
    SamplingMethod,
};

fn forest_finishes() -> Vec<FinishMethod> {
    let mut out: Vec<FinishMethod> = UfSpec::all_variants()
        .into_iter()
        .filter(|s| s.splice != Some(SpliceKind::Splice))
        .map(FinishMethod::UnionFind)
        .collect();
    out.push(FinishMethod::ShiloachVishkin);
    out
}

fn samplings() -> Vec<SamplingMethod> {
    vec![
        SamplingMethod::None,
        SamplingMethod::kout_default(),
        SamplingMethod::bfs_default(),
        SamplingMethod::ldd_default(),
    ]
}

#[test]
fn forest_matrix_rmat() {
    let el = rmat_default(10, 5_000, 13);
    let g = build_undirected(el.num_vertices, &el.edges);
    for sampling in samplings() {
        for finish in forest_finishes() {
            let f = spanning_forest(&g, &sampling, &finish, 77);
            assert!(is_valid_spanning_forest(&g, &f), "{} + {}", sampling.name(), finish.name());
        }
    }
}

#[test]
fn forest_matrix_grid() {
    let g = grid2d(20, 20);
    for sampling in samplings() {
        for finish in [FinishMethod::fastest(), FinishMethod::ShiloachVishkin] {
            let f = spanning_forest(&g, &sampling, &finish, 3);
            assert!(is_valid_spanning_forest(&g, &f), "{} + {}", sampling.name(), finish.name());
            assert_eq!(f.len(), 399);
        }
    }
}

#[test]
fn forest_multi_component_counts() {
    let el = disjoint_union(&[
        rmat_default(8, 900, 1),
        rmat_default(8, 900, 2),
        cc_graph::EdgeList::new(5, vec![]),
    ]);
    let g = build_undirected(el.num_vertices, &el.edges);
    let truth = cc_graph::stats::component_stats(&g);
    let f = spanning_forest(&g, &SamplingMethod::kout_default(), &FinishMethod::fastest(), 5);
    assert!(is_valid_spanning_forest(&g, &f));
    assert_eq!(f.len(), g.num_vertices() - truth.num_components);
}

#[test]
fn forest_support_classification() {
    assert!(supports_spanning_forest(&FinishMethod::fastest()));
    assert!(supports_spanning_forest(&FinishMethod::ShiloachVishkin));
    assert!(!supports_spanning_forest(&FinishMethod::LabelPropagation));
    assert!(!supports_spanning_forest(&FinishMethod::Stergiou));
    let splice = UfSpec::rem(
        cc_unionfind::UniteKind::RemCas,
        SpliceKind::Splice,
        cc_unionfind::FindKind::Naive,
    );
    assert!(!supports_spanning_forest(&FinishMethod::UnionFind(splice)));
}

#[test]
fn forest_repeated_runs_always_valid() {
    // Nondeterministic scheduling must never yield an invalid forest.
    let el = rmat_default(10, 8_000, 5);
    let g = build_undirected(el.num_vertices, &el.edges);
    for seed in 0..10u64 {
        let f =
            spanning_forest(&g, &SamplingMethod::kout_default(), &FinishMethod::fastest(), seed);
        assert!(is_valid_spanning_forest(&g, &f), "seed {seed}");
    }
}
