//! Property: the monomorphized dispatch path and the object-safe
//! `Box<dyn Unite>` adapter are observationally identical — same
//! partitions on every valid variant, and the same spanning-forest edge
//! counts where forests are supported — on RMAT and grid inputs.

use cc_graph::generators::{grid2d, rmat_default};
use cc_graph::stats::same_partition;
use cc_graph::{build_undirected, CsrGraph};
use cc_unionfind::parents::{make_parents, snapshot_labels};
use cc_unionfind::{SpliceKind, UfSpec};
use connectit::{connectivity_seeded, spanning_forest, FinishMethod, SamplingMethod};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The finish phase through the dyn adapter: one virtual call and a
/// mandatory hop write per edge (the pre-refactor execution model).
fn dyn_finish(g: &CsrGraph, spec: UfSpec, seed: u64) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let p = make_parents(n);
    let uf = spec.instantiate(n, seed);
    let uf = uf.as_ref();
    let hooks = AtomicUsize::new(0);
    g.for_each_edge_par(|u, v| {
        let mut hops = 0u64;
        if uf.unite(&p, u, v, &mut hops).is_some() {
            hooks.fetch_add(1, Ordering::Relaxed);
        }
    });
    (snapshot_labels(&p), hooks.load(Ordering::Relaxed))
}

fn check_graph(g: &CsrGraph, seed: u64) -> Result<(), TestCaseError> {
    for spec in UfSpec::all_variants() {
        let finish = FinishMethod::UnionFind(spec);
        let static_labels = connectivity_seeded(g, &SamplingMethod::None, &finish, seed);
        let (dyn_labels, dyn_hooks) = dyn_finish(g, spec, seed);
        prop_assert!(
            same_partition(&static_labels, &dyn_labels),
            "partition mismatch for {}",
            spec.name()
        );
        // Each component of size s hooks exactly s - 1 roots over its
        // lifetime, so the hook count is partition-determined and must
        // agree with the spanning-forest edge count of the static path.
        if spec.splice != Some(SpliceKind::Splice) {
            let forest = spanning_forest(g, &SamplingMethod::None, &finish, seed);
            prop_assert_eq!(
                forest.len(),
                dyn_hooks,
                "forest edge count mismatch for {}",
                spec.name()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn monomorphized_and_dyn_agree_on_rmat(
        seed in any::<u64>(),
        edges in 200usize..900,
    ) {
        let el = rmat_default(8, edges, seed ^ 0x5a);
        let g = build_undirected(el.num_vertices, &el.edges);
        check_graph(&g, seed)?;
    }

    #[test]
    fn monomorphized_and_dyn_agree_on_grid(
        seed in any::<u64>(),
        w in 6usize..14,
        h in 6usize..14,
    ) {
        let g = grid2d(w, h);
        check_graph(&g, seed)?;
    }
}
