//! Streaming end-to-end: batch-incremental results must agree with static
//! connectivity, for every stream algorithm type, batch size, and
//! insert/query mix.

use cc_graph::generators::{barabasi_albert, rmat_default};
use cc_graph::stats::same_partition;
use cc_unionfind::{oracle_labels, FindKind, SeqUnionFind, SpliceKind, UfSpec, UniteKind};
use connectit::{LtScheme, StreamAlgorithm, StreamingConnectivity, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn algorithms() -> Vec<StreamAlgorithm> {
    vec![
        StreamAlgorithm::UnionFind(UfSpec::fastest()),
        StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Async, FindKind::Compress)),
        StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Hooks, FindKind::Split)),
        StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Early, FindKind::Naive)),
        StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Jtb, FindKind::TwoTrySplit)),
        StreamAlgorithm::UnionFind(UfSpec::rem(
            UniteKind::RemCas,
            SpliceKind::Splice,
            FindKind::Naive,
        )),
        StreamAlgorithm::UnionFind(UfSpec::rem(
            UniteKind::RemLock,
            SpliceKind::HalveOne,
            FindKind::Halve,
        )),
        StreamAlgorithm::ShiloachVishkin,
        StreamAlgorithm::LiuTarjan(LtScheme::crfa()),
    ]
}

#[test]
fn insert_only_stream_matches_oracle_across_batch_sizes() {
    let el = rmat_default(11, 10_000, 19);
    let n = el.num_vertices;
    let expect = oracle_labels(n, &el.edges);
    for alg in algorithms() {
        for batch_size in [1usize, 17, 1000, el.edges.len()] {
            let s = StreamingConnectivity::new(n, &alg, 4);
            for chunk in el.edges.chunks(batch_size) {
                let batch: Vec<Update> = chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
                s.process_batch(&batch);
            }
            assert!(same_partition(&expect, &s.labels()), "{} batch_size={batch_size}", alg.name());
        }
    }
}

#[test]
fn queries_between_batches_match_sequential_reference() {
    // Apply batches of inserts; between batches, issue queries whose
    // answers are deterministic and compare with a sequential union-find.
    let el = barabasi_albert(2_000, 2, 3);
    let n = el.num_vertices;
    let mut rng = StdRng::seed_from_u64(11);
    for alg in algorithms() {
        let s = StreamingConnectivity::new(n, &alg, 6);
        let mut reference = SeqUnionFind::new(n);
        for chunk in el.edges.chunks(500) {
            let batch: Vec<Update> = chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
            s.process_batch(&batch);
            for &(u, v) in chunk {
                reference.union(u, v);
            }
            // Pure-query batch: answers must match the reference exactly.
            let queries: Vec<(u32, u32)> =
                (0..50).map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))).collect();
            let batch: Vec<Update> = queries.iter().map(|&(u, v)| Update::Query(u, v)).collect();
            let answers = s.process_batch(&batch);
            for (i, &(u, v)) in queries.iter().enumerate() {
                assert_eq!(answers[i], reference.connected(u, v), "{} query ({u},{v})", alg.name());
            }
        }
    }
}

#[test]
fn mixed_batches_are_safe_and_converge() {
    // Mixed insert/query batches: answers within a batch are
    // implementation-defined (unordered), but must never crash, and the
    // final structure must be correct.
    let el = rmat_default(10, 6_000, 23);
    let n = el.num_vertices;
    let expect = oracle_labels(n, &el.edges);
    let mut rng = StdRng::seed_from_u64(29);
    for alg in algorithms() {
        let s = StreamingConnectivity::new(n, &alg, 8);
        let mut at = 0usize;
        while at < el.edges.len() {
            let end = (at + 700).min(el.edges.len());
            let mut batch: Vec<Update> =
                el.edges[at..end].iter().map(|&(u, v)| Update::Insert(u, v)).collect();
            for _ in 0..100 {
                let q = Update::Query(rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
                batch.insert(rng.gen_range(0..=batch.len()), q);
            }
            let answers = s.process_batch(&batch);
            assert_eq!(answers.len(), 100, "{}", alg.name());
            at = end;
        }
        assert!(same_partition(&expect, &s.labels()), "{}", alg.name());
    }
}

#[test]
fn query_only_workload_on_prebuilt_graph() {
    let el = rmat_default(10, 8_000, 31);
    let n = el.num_vertices;
    let truth = oracle_labels(n, &el.edges);
    for alg in algorithms() {
        let s = StreamingConnectivity::new(n, &alg, 2);
        let batch: Vec<Update> = el.edges.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
        s.process_batch(&batch);
        // Exhaustive pairwise spot-check on a sample.
        for u in (0..n as u32).step_by(97) {
            for v in (0..n as u32).step_by(131) {
                assert_eq!(
                    s.connected(u, v),
                    truth[u as usize] == truth[v as usize],
                    "{} ({u},{v})",
                    alg.name()
                );
            }
        }
    }
}

#[test]
fn throughput_counters_sane() {
    // A smoke test that large single batches work (the Table 4 workload).
    let el = barabasi_albert(5_000, 3, 5);
    let n = el.num_vertices;
    let s = StreamingConnectivity::new(n, &StreamAlgorithm::UnionFind(UfSpec::fastest()), 0);
    let batch: Vec<Update> = el.edges.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
    let t0 = std::time::Instant::now();
    s.process_batch(&batch);
    let dt = t0.elapsed().as_secs_f64();
    assert!(dt < 10.0, "single large batch took {dt}s");
    assert!(same_partition(&oracle_labels(n, &el.edges), &s.labels()));
}
