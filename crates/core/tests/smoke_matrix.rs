//! Workspace smoke test: every (sampling, finish) combination ConnectIt
//! exposes must produce the same partition as the sequential oracle.
//!
//! This is the exhaustive companion to the randomized `prop_framework`
//! tests: those sample the combination space, this walks all of it — every
//! valid union-find variant, all sixteen Liu–Tarjan schemes,
//! Shiloach–Vishkin, Stergiou, and label propagation, each under no
//! sampling, all four k-out variants, BFS, and LDD.

use cc_graph::generators::{grid2d, rmat_default};
use cc_graph::stats::same_partition;
use cc_graph::{build_undirected, CsrGraph};
use cc_unionfind::{oracle_labels, UfSpec};
use connectit::{connectivity_seeded, FinishMethod, KOutVariant, LtScheme, SamplingMethod};

fn all_finish_methods() -> Vec<FinishMethod> {
    let mut out: Vec<FinishMethod> =
        UfSpec::all_variants().into_iter().map(FinishMethod::UnionFind).collect();
    out.extend(LtScheme::all_schemes().into_iter().map(FinishMethod::LiuTarjan));
    out.push(FinishMethod::ShiloachVishkin);
    out.push(FinishMethod::Stergiou);
    out.push(FinishMethod::LabelPropagation);
    out
}

fn all_sampling_methods() -> Vec<SamplingMethod> {
    let mut out = vec![SamplingMethod::None];
    out.extend(KOutVariant::ALL.iter().map(|&variant| SamplingMethod::KOut { k: 2, variant }));
    out.push(SamplingMethod::bfs_default());
    out.push(SamplingMethod::ldd_default());
    out
}

fn check_matrix(name: &str, g: &CsrGraph, truth: &[u32]) {
    let mut combos = 0usize;
    for finish in all_finish_methods() {
        for sampling in all_sampling_methods() {
            let labels = connectivity_seeded(g, &sampling, &finish, 7);
            assert!(
                same_partition(truth, &labels),
                "{name}: {} + {} disagrees with the sequential oracle",
                sampling.name(),
                finish.name()
            );
            combos += 1;
        }
    }
    // 36 union-find variants + 16 Liu-Tarjan schemes + SV/Stergiou/LP,
    // each under 7 sampling configurations.
    assert_eq!(combos, 55 * 7, "{name}: combination space changed; update this count");
}

#[test]
fn every_combination_matches_oracle_on_rmat() {
    let el = rmat_default(8, 1_500, 42);
    let g = build_undirected(el.num_vertices, &el.edges);
    let truth = oracle_labels(el.num_vertices, &el.edges);
    check_matrix("rmat", &g, &truth);
}

#[test]
fn every_combination_matches_oracle_on_grid() {
    // Row-major grid: high diameter and strong vertex-id locality, the
    // adversarial regime for LDD sampling and label propagation.
    let g = grid2d(16, 16);
    let edges: Vec<(u32, u32)> = (0..g.num_vertices() as u32)
        .flat_map(|u| g.neighbors(u).iter().map(move |&v| (u, v)).collect::<Vec<_>>())
        .filter(|&(u, v)| u < v)
        .collect();
    let truth = oracle_labels(g.num_vertices(), &edges);
    check_matrix("grid", &g, &truth);
}
