//! Sampling-phase contracts across graph families: Definition 3.1
//! structure, partial-labeling soundness, coverage behaviour, and the
//! quality metrics reported in Tables 6–7.

use cc_graph::builder::build_undirected_ordered;
use cc_graph::generators::{clustered_web, grid2d, rmat_default, shuffle_labels};
use cc_graph::{build_undirected, CsrGraph, NO_VERTEX};
use connectit::sampling::{
    identify_frequent, inter_component_edges, run_sampling, satisfies_sampling_contract,
};
use connectit::{KOutVariant, SamplingMethod};

fn graphs() -> Vec<(String, CsrGraph)> {
    let rmat = rmat_default(11, 30_000, 3);
    let web = clustered_web(100, 24, 4, 0.4, 5);
    vec![
        ("grid".into(), grid2d(50, 50)),
        ("rmat".into(), build_undirected(rmat.num_vertices, &rmat.edges)),
        ("web-ordered".into(), build_undirected_ordered(web.num_vertices, &web.edges)),
    ]
}

fn all_methods() -> Vec<SamplingMethod> {
    let mut out = vec![
        SamplingMethod::bfs_default(),
        SamplingMethod::ldd_default(),
        SamplingMethod::Ldd { beta: 0.5, permute: true },
    ];
    for k in [1usize, 2, 4] {
        for variant in KOutVariant::ALL {
            out.push(SamplingMethod::KOut { k, variant });
        }
    }
    out
}

#[test]
fn definition_3_1_holds_everywhere() {
    for (tag, g) in graphs() {
        for method in all_methods() {
            let out = run_sampling(&g, &method, 17, false);
            assert!(satisfies_sampling_contract(&out.labels), "{tag}: {}", method.name());
        }
    }
}

#[test]
fn sampling_never_merges_distinct_components() {
    let a = rmat_default(9, 2_000, 1);
    let b = rmat_default(9, 2_000, 2);
    let el = cc_graph::generators::disjoint_union(&[a, b]);
    let g = build_undirected(el.num_vertices, &el.edges);
    let half = 512usize; // vertices of part a
    for method in all_methods() {
        let out = run_sampling(&g, &method, 9, false);
        for u in (0..half).step_by(37) {
            for v in (half..g.num_vertices()).step_by(41) {
                assert_ne!(out.labels[u], out.labels[v], "{}", method.name());
            }
        }
    }
}

#[test]
fn frequent_label_is_exact() {
    for (_, g) in graphs() {
        let out = run_sampling(&g, &SamplingMethod::kout_default(), 23, false);
        let (f, c) = identify_frequent(&out.labels);
        let expect = cc_graph::stats::most_frequent_label(&out.labels);
        assert_eq!(c, expect.1);
        assert_eq!(out.labels.iter().filter(|&&l| l == f).count(), c);
    }
}

#[test]
fn kout_quality_improves_with_k() {
    let el = rmat_default(12, 60_000, 7);
    let g = build_undirected(el.num_vertices, &el.edges);
    let mut prev_ic = usize::MAX;
    for k in [1usize, 2, 4] {
        let out =
            run_sampling(&g, &SamplingMethod::KOut { k, variant: KOutVariant::Hybrid }, 3, false);
        let ic = inter_component_edges(&g, &out.labels);
        assert!(ic <= prev_ic, "k={k}: {ic} > {prev_ic}");
        prev_ic = ic;
    }
    // At k=4 on a social network nearly everything is contracted.
    assert!(prev_ic * 10 < g.num_directed_edges());
}

#[test]
fn afforest_fails_and_hybrid_recovers_on_ordered_web() {
    // Figures 22–24 headline. Same underlying graph, adversarial order.
    let web = clustered_web(200, 32, 6, 0.4, 11);
    let g = build_undirected_ordered(web.num_vertices, &web.edges);
    let aff =
        run_sampling(&g, &SamplingMethod::KOut { k: 2, variant: KOutVariant::Afforest }, 5, false);
    let hyb =
        run_sampling(&g, &SamplingMethod::KOut { k: 2, variant: KOutVariant::Hybrid }, 5, false);
    let pure =
        run_sampling(&g, &SamplingMethod::KOut { k: 2, variant: KOutVariant::Pure }, 5, false);
    // Afforest's giant is at most a few blocks; the randomized variants
    // find a giant spanning a large fraction of the graph.
    assert!(aff.frequent_count < g.num_vertices() / 10, "afforest {}", aff.frequent_count);
    assert!(hyb.frequent_count > g.num_vertices() / 2, "hybrid {}", hyb.frequent_count);
    assert!(pure.frequent_count > g.num_vertices() / 2, "pure {}", pure.frequent_count);
    // And relabeling the graph randomly repairs Afforest (the ordering is
    // the problem, not the topology).
    let shuffled = shuffle_labels(&web, 13);
    let g2 = build_undirected(shuffled.num_vertices, &shuffled.edges);
    let aff2 =
        run_sampling(&g2, &SamplingMethod::KOut { k: 2, variant: KOutVariant::Afforest }, 5, false);
    assert!(
        aff2.frequent_count > g2.num_vertices() / 2,
        "shuffled afforest {}",
        aff2.frequent_count
    );
}

#[test]
fn bfs_sampling_covers_connected_graphs_fully() {
    let g = grid2d(40, 40);
    let out = run_sampling(&g, &SamplingMethod::bfs_default(), 2, false);
    assert_eq!(out.frequent_count, g.num_vertices());
    assert_eq!(inter_component_edges(&g, &out.labels), 0);
}

#[test]
fn bfs_sampling_falls_back_without_giant() {
    // 20 components of 50 vertices each: no component exceeds 10%.
    let parts: Vec<cc_graph::EdgeList> =
        (0..20).map(|i| rmat_default(6, 300, i as u64).clone()).collect();
    let merged = cc_graph::generators::disjoint_union(&parts);
    let g = build_undirected(merged.num_vertices, &merged.edges);
    let out = run_sampling(&g, &SamplingMethod::Bfs { tries: 3 }, 1, false);
    // Fallback = identity labeling, frequent disabled.
    assert_eq!(out.frequent, NO_VERTEX);
    assert!(out.labels.iter().enumerate().all(|(i, &l)| l == i as u32));
}

#[test]
fn ldd_beta_controls_cut_edges() {
    let g = grid2d(80, 80);
    let small = run_sampling(&g, &SamplingMethod::Ldd { beta: 0.05, permute: false }, 3, false);
    let large = run_sampling(&g, &SamplingMethod::Ldd { beta: 0.8, permute: false }, 3, false);
    let ic_small = inter_component_edges(&g, &small.labels);
    let ic_large = inter_component_edges(&g, &large.labels);
    assert!(ic_small < ic_large, "beta 0.05 cuts {ic_small}, beta 0.8 cuts {ic_large}");
}
