//! Quickstart: build a graph, compute connected components, a spanning
//! forest, and answer streaming queries — the whole public API in ~60
//! lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cc_graph::build_undirected;
use connectit::{
    connectivity, spanning_forest, FinishMethod, SamplingMethod, StreamAlgorithm,
    StreamingConnectivity, Update,
};

fn main() {
    // A small undirected graph: two triangles joined by a bridge, plus an
    // isolated vertex.
    //
    //   0 - 1        4 - 5
    //    \ /          \ /
    //     2 --bridge-- 3        6
    let edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)];
    let g = build_undirected(7, &edges);
    println!("graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    // 1. Static connectivity with the paper's fastest configuration:
    //    k-out sampling + Union-Rem-CAS{SplitAtomicOne}.
    let labels = connectivity(&g, &SamplingMethod::kout_default(), &FinishMethod::fastest());
    println!("labels: {labels:?}");
    assert_eq!(labels[0], labels[5], "the bridge joins the triangles");
    assert_ne!(labels[0], labels[6], "vertex 6 is isolated");

    // 2. A spanning forest: one tree per component.
    let forest = spanning_forest(&g, &SamplingMethod::None, &FinishMethod::fastest(), 42);
    println!("spanning forest ({} edges): {forest:?}", forest.len());
    assert_eq!(forest.len(), 5); // 7 vertices, 2 components

    // 3. Incremental connectivity: stream inserts and queries in batches.
    let stream = StreamingConnectivity::new(
        7,
        &StreamAlgorithm::UnionFind(cc_unionfind::UfSpec::fastest()),
        0,
    );
    stream.process_batch(&[Update::Insert(0, 1), Update::Insert(1, 2)]);
    let answers = stream.process_batch(&[Update::Query(0, 2), Update::Query(0, 6)]);
    println!("streaming answers: {answers:?}");
    assert_eq!(answers, vec![true, false]);

    println!("quickstart OK");
}
