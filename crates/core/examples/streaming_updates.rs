//! Streaming scenario: ingest a live edge stream in batches, mixing
//! insertions with connectivity queries — the Section 4.4 workload.
//! Reports per-batch latency and sustained throughput for several
//! streaming algorithm types.
//!
//! ```sh
//! cargo run --release --example streaming_updates [scale]
//! ```

use cc_graph::generators::rmat_default;
use cc_unionfind::UfSpec;
use connectit::{LtScheme, StreamAlgorithm, StreamingConnectivity, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(18);
    let n = 1usize << scale;
    let num_edges = n * 8;
    eprintln!("sampling {num_edges} RMAT edge updates over {n} vertices...");
    let stream_edges = rmat_default(scale, num_edges, 9).edges;

    let algorithms = [
        StreamAlgorithm::UnionFind(UfSpec::fastest()),
        StreamAlgorithm::UnionFind(UfSpec::new(
            cc_unionfind::UniteKind::Async,
            cc_unionfind::FindKind::Halve,
        )),
        StreamAlgorithm::ShiloachVishkin,
        StreamAlgorithm::LiuTarjan(LtScheme::crfa()),
    ];

    // Pure-insert throughput at several batch sizes (Figure 4's axes).
    println!("\ninsert-only throughput (edges/second):");
    print!("{:<44}", "algorithm");
    let batch_sizes = [1_000usize, 100_000, num_edges];
    for bs in batch_sizes {
        print!(" {:>12}", format!("batch={bs}"));
    }
    println!();
    for alg in &algorithms {
        print!("{:<44}", alg.name());
        for &bs in &batch_sizes {
            let s = StreamingConnectivity::new(n, alg, 1);
            let t0 = Instant::now();
            for chunk in stream_edges.chunks(bs) {
                let batch: Vec<Update> = chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
                s.process_batch(&batch);
            }
            let rate = num_edges as f64 / t0.elapsed().as_secs_f64();
            print!(" {:>12.3e}", rate);
        }
        println!();
    }

    // Mixed workload: 70% inserts / 30% queries (Figure 17's regime).
    println!("\nmixed 70/30 insert/query workload, batch = 100k:");
    let mut rng = StdRng::seed_from_u64(5);
    for alg in &algorithms {
        let s = StreamingConnectivity::new(n, alg, 2);
        let mut connected = 0usize;
        let mut ops = 0usize;
        let t0 = Instant::now();
        for chunk in stream_edges.chunks(70_000) {
            let mut batch: Vec<Update> = chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
            for _ in 0..chunk.len() * 3 / 7 {
                batch.push(Update::Query(rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
            }
            ops += batch.len();
            connected += s.process_batch(&batch).iter().filter(|&&c| c).count();
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "{:<44} {:>10.3e} ops/s   ({} queries answered 'connected')",
            alg.name(),
            ops as f64 / dt,
            connected
        );
    }
}
