//! Fully-dynamic scenario (the paper's stated future work): a workload
//! mixing insertions, *deletions*, and queries. Insertions ride the
//! wait-free incremental path; a deletion batch triggers a recompute with
//! the static two-phase engine. Shows the cost asymmetry and why the paper
//! calls practical parallel deletion support an open problem.
//!
//! ```sh
//! cargo run --release --example dynamic_deletions [scale]
//! ```

use cc_unionfind::UfSpec;
use connectit::{DynUpdate, DynamicConnectivity};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let n = 1usize << scale;
    let edges = cc_graph::generators::rmat_default(scale, n * 4, 11).edges;
    let mut rng = StdRng::seed_from_u64(3);

    let mut d = DynamicConnectivity::new(n, UfSpec::fastest(), 7);

    // Phase 1: insert-only (incremental fast path).
    let t0 = Instant::now();
    for chunk in edges.chunks(100_000) {
        let batch: Vec<DynUpdate> = chunk.iter().map(|&(u, v)| DynUpdate::Insert(u, v)).collect();
        d.process_batch(&batch);
    }
    let insert_time = t0.elapsed().as_secs_f64();
    println!(
        "inserted {} edges incrementally in {:.3}s ({:.2e} edges/s), rebuilds = {}",
        edges.len(),
        insert_time,
        edges.len() as f64 / insert_time,
        d.rebuilds()
    );

    // Phase 2: deletion batches (each forces one recompute before the
    // next query).
    let t1 = Instant::now();
    let mut deleted = 0usize;
    for _ in 0..5 {
        let mut batch: Vec<DynUpdate> = (0..200)
            .map(|_| {
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                deleted += 1;
                DynUpdate::Delete(u, v)
            })
            .collect();
        batch.push(DynUpdate::Query(0, (n / 2) as u32));
        d.process_batch(&batch);
    }
    let delete_time = t1.elapsed().as_secs_f64();
    println!(
        "5 deletion batches ({deleted} deletes) in {:.3}s — {} rebuilds at ~{:.3}s each",
        delete_time,
        d.rebuilds(),
        delete_time / d.rebuilds().max(1) as f64
    );
    println!(
        "cost asymmetry: one deletion batch ~= {:.0}x the per-batch insert cost;",
        (delete_time / 5.0) / (insert_time / (edges.len() as f64 / 100_000.0))
    );
    println!("this is exactly why the paper leaves practical parallel deletions as future work.");

    // Phase 3: verify against a from-scratch recompute.
    let labels = d.labels();
    println!(
        "final: {} live edges, {} components",
        d.num_edges(),
        cc_graph::stats::count_distinct_labels(&labels)
    );
}
