//! Road-network scenario: a high-diameter 2-D grid (the analog of the
//! paper's road_usa input). Demonstrates why diameter matters: BFS-based
//! sampling and label propagation collapse, while k-out sampling with
//! union-find stays fast — the Section 4.2 takeaway for high-diameter
//! graphs.
//!
//! ```sh
//! cargo run --release --example road_network [side]
//! ```

use cc_graph::generators::grid2d;
use connectit::{connectivity_timed, FinishMethod, SamplingMethod};

fn main() {
    let side: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(700);
    eprintln!("building {side}x{side} grid...");
    let g = grid2d(side, side);
    println!(
        "graph: n = {}, m = {}, diameter = {}",
        g.num_vertices(),
        g.num_edges(),
        2 * (side - 1)
    );

    let configs = [
        ("Union-Rem-CAS, no sampling", SamplingMethod::None, FinishMethod::fastest()),
        ("Union-Rem-CAS + k-out", SamplingMethod::kout_default(), FinishMethod::fastest()),
        ("Union-Rem-CAS + BFS", SamplingMethod::bfs_default(), FinishMethod::fastest()),
        ("Union-Rem-CAS + LDD", SamplingMethod::ldd_default(), FinishMethod::fastest()),
        ("Label-Propagation, no sampling", SamplingMethod::None, FinishMethod::LabelPropagation),
        ("Label-Propagation + BFS", SamplingMethod::bfs_default(), FinishMethod::LabelPropagation),
    ];

    println!(
        "\n{:<34} {:>10} {:>10} {:>10}",
        "configuration", "sample(s)", "finish(s)", "total(s)"
    );
    let mut results = Vec::new();
    for (name, sampling, finish) in configs {
        let (labels, stats) = connectivity_timed(&g, &sampling, &finish, 11);
        println!(
            "{:<34} {:>10.4} {:>10.4} {:>10.4}",
            name,
            stats.sampling_seconds,
            stats.finish_seconds,
            stats.total_seconds()
        );
        results.push(labels);
    }
    // All configurations must agree: the grid is one component.
    for labels in &results {
        assert!(labels.iter().all(|&l| l == labels[0]));
    }
    println!("\nall configurations agree: 1 component");
    println!("note how Label-Propagation pays ~diameter rounds on this graph,");
    println!("while k-out sampling + union-find is insensitive to diameter —");
    println!("the paper's guidance for high-diameter inputs (Section 4.2).");
}
