//! Social-network scenario: an RMAT graph (the paper's model for Twitter /
//! Friendster-style inputs), comparing finish methods and sampling
//! strategies and reporting the speedups two-phase execution buys.
//!
//! ```sh
//! cargo run --release --example social_network [scale]
//! ```

use cc_graph::build_undirected;
use cc_graph::generators::rmat_default;
use connectit::{connectivity_timed, FinishMethod, LtScheme, SamplingMethod};

fn main() {
    let scale: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(17);
    let num_edges = (1usize << scale) * 10;
    eprintln!("generating RMAT scale {scale} with {num_edges} edges...");
    let el = rmat_default(scale, num_edges, 42);
    let g = build_undirected(el.num_vertices, &el.edges);
    println!("graph: n = {}, m = {} (symmetrized, deduped)", g.num_vertices(), g.num_edges());

    let finishes = [
        FinishMethod::fastest(),
        FinishMethod::ShiloachVishkin,
        FinishMethod::LiuTarjan(LtScheme::crfa()),
        FinishMethod::LabelPropagation,
    ];
    let samplings = [
        SamplingMethod::None,
        SamplingMethod::kout_default(),
        SamplingMethod::bfs_default(),
        SamplingMethod::ldd_default(),
    ];

    println!(
        "\n{:<42} {:>14} {:>10} {:>10} {:>10}",
        "finish", "no-sampling", "k-out", "BFS", "LDD"
    );
    for finish in &finishes {
        print!("{:<42}", finish.name());
        let mut base = 0.0;
        for (i, sampling) in samplings.iter().enumerate() {
            let (_, stats) = connectivity_timed(&g, sampling, finish, 7);
            let t = stats.total_seconds();
            if i == 0 {
                base = t;
                print!(" {:>13.4}s", t);
            } else {
                print!(" {:>6.4}s({:>1.2}x)", t, base / t);
            }
        }
        println!();
    }

    // Verify all configurations agree on the answer.
    let reference = connectit::connectivity(&g, &SamplingMethod::None, &FinishMethod::fastest());
    let check = connectit::connectivity(
        &g,
        &SamplingMethod::kout_default(),
        &FinishMethod::LabelPropagation,
    );
    assert!(cc_graph::stats::same_partition(&reference, &check));
    let comps = cc_graph::stats::count_distinct_labels(&reference);
    println!("\ncomponents: {comps}");
}
