//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot),
//! backed by `std::sync`.
//!
//! The build environment for this workspace has no crates.io access, so
//! this crate re-implements exactly the subset of the `parking_lot` API the
//! workspace uses — `Mutex` (panic-free, non-poisoning `lock()`),
//! `Condvar::{wait, wait_for, notify_one, notify_all}` and
//! `WaitTimeoutResult` — with the same signatures, so swapping the real
//! dependency back in is a one-line Cargo.toml change.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive mirroring `parking_lot::Mutex`.
///
/// Unlike `std::sync::Mutex`, `lock()` returns the guard directly (poisoning
/// is absorbed: a panic while holding the lock does not poison it for later
/// callers, matching parking_lot semantics).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: the `&mut self` receiver proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// underlying std guard by value (std's condvar consumes and returns guards,
/// parking_lot's mutates them in place); it is `Some` at all other times.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable mirroring `parking_lot::Condvar`: waits take
/// `&mut MutexGuard` instead of consuming the guard.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Blocks until this condition variable is notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or until `timeout` elapses, whichever is first.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) =
            self.inner.wait_timeout(std_guard, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        assert!(!*g);
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().expect("waiter exits");
    }
}
