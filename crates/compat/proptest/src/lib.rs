//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment for this workspace has no crates.io access, so
//! this crate implements the subset of the proptest API the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `boxed`, range and tuple strategies, [`Just`],
//! [`any`], [`collection::vec()`], the [`prop_oneof!`] union, and the
//! [`proptest!`] / `prop_assert*` macros driven by [`ProptestConfig`].
//!
//! Differences from real proptest, deliberate for an offline shim:
//! no shrinking (a failing case reports its case number and message, not a
//! minimized input), no persisted failure regressions, and generation is
//! deterministic per case index, so failures always reproduce.

#![warn(missing_docs)]

use std::fmt;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::TestRng;

/// Everything a property-test file needs (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

pub use strategy::any;

/// Per-`proptest!` block configuration (mirrors
/// `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed property assertion, carried out of the test body by
/// `prop_assert*` (mirrors `proptest::test_runner::TestCaseError`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against `ProptestConfig::cases`
/// deterministic random cases (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::deterministic(__case as u64);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(__e) = __result {
                        ::core::panic!(
                            "proptest property {} failed at case {}: {}",
                            ::core::stringify!($name), __case, __e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the enclosing property case unless the condition holds (mirrors
/// `proptest::prop_assert!`). Must run inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the case unless the two values are equal (mirrors
/// `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            ::core::stringify!($left), ::core::stringify!($right),
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the case unless the two values differ (mirrors
/// `proptest::prop_assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            ::core::stringify!($left), ::core::stringify!($right),
            ::std::format!($($fmt)+), __l
        );
    }};
}

/// Picks uniformly between several strategies producing the same value type
/// (mirrors `proptest::prop_oneof!`; arm weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}
