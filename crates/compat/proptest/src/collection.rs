//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A `Vec` strategy: length drawn from `size`, elements from `element`
/// (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "cannot generate from empty size range");
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_span(self.size.start as u64, self.size.end as u64 - 1) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_and_elements_respect_bounds() {
        let mut rng = TestRng::deterministic(0);
        let strat = vec(0u32..7, 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 7));
        }
    }
}
