//! The [`Strategy`] trait and the built-in strategies the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type (mirrors
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// A strategy generating a value, then generating from the strategy `f`
    /// builds out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases this strategy (mirrors `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the wrapped value (mirrors `proptest::...::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased strategies (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical full-range strategy (mirrors
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Integer types whose ranges act as strategies.
pub trait RangeValue: Copy {
    /// Widens to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back from the `u64` sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_range_value!(u8, u16, u32, u64, usize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (low, high) = (self.start.to_u64(), self.end.to_u64());
        assert!(low < high, "cannot generate from empty range");
        T::from_u64(rng.in_span(low, high - 1))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let (low, high) = (self.start().to_u64(), self.end().to_u64());
        assert!(low <= high, "cannot generate from empty range");
        T::from_u64(rng.in_span(low, high))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::deterministic(0);
        let strat = (2usize..10).prop_flat_map(|n| (Just(n), 0..n as u32));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert!((2..10).contains(&n));
            assert!((v as usize) < n);
        }
        let doubled = (0u32..5).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert!(doubled.generate(&mut rng) % 2 == 0);
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::deterministic(1);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
