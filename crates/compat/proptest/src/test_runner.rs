//! The deterministic RNG driving value generation.

/// Deterministic per-case RNG (splitmix64). Case `k` of every property
/// always sees the same stream, so failures reproduce without persisted
/// regression files.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for test-case index `case`.
    pub fn deterministic(case: u64) -> Self {
        // Salt so case 0 doesn't start at raw state 0.
        Self { state: case ^ 0xC0FF_EE00_D15E_A5E5 }
    }

    /// Next 64 random bits (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Debiased: reject draws from the final partial copy of `bound`.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform draw from the inclusive span `[low, high]`.
    pub fn in_span(&mut self, low: u64, high: u64) -> u64 {
        debug_assert!(low <= high);
        let span = high.wrapping_sub(low).wrapping_add(1);
        if span == 0 {
            return self.next_u64(); // full u64 span
        }
        low.wrapping_add(self.below(span))
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::deterministic(3);
        let mut b = TestRng::deterministic(3);
        assert_eq!(
            (0..64).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..64).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_bounds() {
        let mut rng = TestRng::deterministic(0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn in_span_covers_small_spans() {
        let mut rng = TestRng::deterministic(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.in_span(2, 5) as usize - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
