//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment for this workspace has no crates.io access, so
//! this crate implements the subset of the criterion API the workspace's
//! benches use — `Criterion::benchmark_group`, `BenchmarkGroup::{
//! sample_size, throughput, bench_function, finish}`, `Bencher::iter`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — with
//! a deliberately simple measurement loop: per sample, one timed run of the
//! closure, reporting min/median/mean over the samples in criterion-style
//! human units. Statistical analysis, warm-up tuning, and HTML reports are
//! out of scope; swap the real crate back in for those.
//!
//! Like real criterion binaries, a bench accepts an optional substring
//! filter as its first non-flag CLI argument and a `--test` flag (run each
//! benchmark closure once, for CI smoke coverage, without timing loops).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group (per-iteration work volume).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        // Mirror the argument shapes cargo-bench passes through: `--bench`
        // (injected by cargo), `--test`, and a positional filter string.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self { filter, test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Runs a single free-standing benchmark (stand-in for
    /// `Criterion::bench_function`).
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named collection of benchmarks sharing sample-count and throughput
/// settings (stand-in for `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput, reported as elem/s or B/s.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures `f` and prints one result line.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full = if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { samples: Vec::new(), test_mode: self.criterion.test_mode };
        if self.criterion.test_mode {
            f(&mut bencher);
            println!("{full}: test ok");
            return;
        }
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut per_iter: Vec<f64> = bencher.samples;
        if per_iter.is_empty() {
            println!("{full}: no samples (closure never called Bencher::iter)");
            return;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let mut line = format!(
            "{full}: min {} / median {} / mean {} ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            per_iter.len(),
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if median > 0.0 {
                line.push_str(&format!(", {} {unit}", fmt_si(count / (median * 1e-9))));
            }
        }
        println!("{line}");
    }

    /// Ends the group (stand-in for `BenchmarkGroup::finish`; nothing to
    /// flush in this implementation).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; runs and times the workload
/// (stand-in for `criterion::Bencher`).
pub struct Bencher {
    /// Nanoseconds per iteration, one entry per `iter` call.
    samples: Vec<f64>,
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, recording one sample per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let start = Instant::now();
        black_box(routine());
        let elapsed = start.elapsed();
        self.samples.push(duration_ns(elapsed));
    }
}

fn duration_ns(d: Duration) -> f64 {
    d.as_secs() as f64 * 1e9 + d.subsec_nanos() as f64
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn fmt_si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Declares the benchmark entry list (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more benchmark groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion { filter: None, test_mode: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0;
        group.bench_function("work", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("other".into()), test_mode: false };
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("work", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        let mut runs = 0;
        group.bench_function("work", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }
}
