//! Offline stand-in for [`rand`](https://docs.rs/rand) 0.8.
//!
//! The build environment for this workspace has no crates.io access, so
//! this crate implements exactly the subset of the `rand` 0.8 API the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen, gen_range, gen_bool}` over integer ranges. The generator
//! behind `StdRng` is splitmix64 (Steele et al., "Fast splittable
//! pseudorandom number generators", OOPSLA 2014) — not ChaCha12 like the
//! real `StdRng`, so streams differ from upstream `rand`, but every use in
//! this workspace only needs a seeded, deterministic, well-mixed stream.

#![warn(missing_docs)]

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic seeded RNG standing in for `rand::rngs::StdRng`.
    ///
    /// Backed by splitmix64: passes BigCrush on 64-bit outputs, one u64 of
    /// state, and `seed_from_u64` is the identity on the state — ideal for
    /// reproducible tests and generators.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64: golden-gamma increment then two xor-shift-multiply
            // finalization rounds.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A seedable RNG (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically seeded from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output source backing [`Rng`] (subset of `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value methods (subset of `rand::Rng`).
///
/// Blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full range (subset of
    /// `rand::Rng::gen` over the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`, like the real `rand`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 uniform mantissa bits, exactly the precision of an f64 in [0,1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their full value range via [`Rng::gen`] (stands in
/// for `rand`'s `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::gen_range`] (stands in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integers uniformly samplable over a `[low, high]` span.
pub trait UniformInt: Copy {
    /// Uniform draw from the inclusive span `[low, high]`; `high >= low`.
    fn uniform_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// `self - 1`; callers guarantee `self` is not the minimum value.
    fn pred(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 span: every output is in range.
                    return rng.next_u64() as $t;
                }
                // Debiased modular reduction (rejection sampling on the
                // tail), as in Lemire 2019 but without the 128-bit multiply:
                // reject draws from the final partial copy of `span`.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
            fn pred(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn uniform_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = ((high as i64).wrapping_sub(low as i64) as u64).wrapping_add(1);
                if span == 0 {
                    // Full i64 span: every output is in range.
                    return rng.next_u64() as $t;
                }
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }
            fn pred(self) -> Self {
                self - 1
            }
        }
    )*};
}
impl_uniform_int_signed!(i8, i16, i32, i64, isize);

impl<T: UniformInt + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        // end > start, so end has a representable predecessor in the span.
        T::uniform_inclusive(rng, self.start, self.end.pred())
    }
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::uniform_inclusive(rng, low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit in 1000 draws");
        for _ in 0..1000 {
            let v = rng.gen_range(5..=6u32);
            assert!(v == 5 || v == 6);
        }
        // Single-value ranges are legal.
        assert_eq!(rng.gen_range(3..4u32), 3);
        assert_eq!(rng.gen_range(9..=9usize), 9);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 heads={heads}");
    }
}
