//! Offline stand-in for [`mio`](https://docs.rs/mio): the readiness-polling
//! subset `cc-server`'s sharded event loop needs.
//!
//! The build environment for this workspace has no crates.io access, so this
//! crate implements exactly the `Poll` / `Events` / `Token` / `Interest` /
//! `Waker` surface the server uses, over two backends:
//!
//! - **epoll** (Linux, the default): one `epoll` instance per [`Poll`],
//!   level-triggered, with the registered fd carried in the event payload.
//! - **`poll(2)`** (portable fallback, and forced by
//!   `CC_MIO_FORCE_POLL=1` or [`Poll::with_poll_fallback`] so the fallback
//!   is exercised in tests on Linux too): the registration table is
//!   re-rendered into a `pollfd` array on every wait.
//!
//! Deliberate deviations from real mio, chosen for an offline shim:
//! registration takes `&impl AsRawFd` instead of a `Source` trait (callers
//! must keep the fd alive and deregister before closing), readiness is
//! level-triggered on both backends (real mio is edge-triggered), and
//! [`Waker`] is a non-blocking pipe rather than an eventfd — the poll
//! backends drain it internally, so a wake is consumed by delivering its
//! event, exactly like mio's.

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

/// Identifies a registered event source in delivered [`Event`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (combine with `|`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(0b10);

    /// The union of two interests (the `const` form of `|`).
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this interest includes readability.
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether this interest includes writability.
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One delivered readiness event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Whether the source is ready for reading (errors and hang-ups are
    /// folded in, so a dead peer is always surfaced to the read path).
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Whether the source is ready for writing.
    pub fn is_writable(&self) -> bool {
        self.writable
    }
}

/// A reusable buffer of delivered events.
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates the events delivered by the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll delivered no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Raw syscall bindings against the libc `std` already links — no crates.io
/// `libc` crate is available in this environment.
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    #[repr(C)]
    pub struct Pollfd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut Pollfd, nfds: std::ffi::c_ulong, timeout: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    pub fn poll_fds(fds: &mut [Pollfd], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(rc as usize)
    }

    /// Reads and discards everything currently readable from `fd` (used to
    /// drain waker pipes; the fd is non-blocking).
    pub fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            let rc = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
            if rc <= 0 {
                return;
            }
        }
    }

    pub fn write_byte(fd: RawFd) -> io::Result<()> {
        let byte = 1u8;
        let rc = unsafe { write(fd, &byte, 1) };
        if rc < 0 {
            let e = io::Error::last_os_error();
            // A full pipe means a wake is already pending — mission
            // accomplished.
            if e.kind() == io::ErrorKind::WouldBlock {
                return Ok(());
            }
            return Err(e);
        }
        Ok(())
    }

    pub fn close_fd(fd: RawFd) {
        unsafe {
            close(fd);
        }
    }

    #[cfg(target_os = "linux")]
    mod linux {
        use std::io;
        use std::os::fd::RawFd;

        // The kernel ABI packs `epoll_event` on x86_64 only.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLL_CLOEXEC: i32 = 0o2000000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        const O_NONBLOCK: i32 = 0o4000;
        const O_CLOEXEC: i32 = 0o2000000;

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn pipe2(fds: *mut i32, flags: i32) -> i32;
        }

        pub fn create() -> io::Result<RawFd> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(fd)
        }

        pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32) -> io::Result<()> {
            let mut ev = EpollEvent { events, data: fd as u64 };
            let ptr = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev };
            if unsafe { epoll_ctl(epfd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(
            epfd: RawFd,
            buf: &mut Vec<EpollEvent>,
            max: usize,
            timeout_ms: i32,
        ) -> io::Result<usize> {
            buf.clear();
            buf.reserve(max);
            let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), max as i32, timeout_ms) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            // epoll_wait wrote `rc` initialized events into the spare
            // capacity reserved above.
            unsafe { buf.set_len(rc as usize) };
            Ok(rc as usize)
        }

        pub fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
            let mut fds = [0i32; 2];
            if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok((fds[0], fds[1]))
        }
    }

    #[cfg(target_os = "linux")]
    pub use linux::*;

    #[cfg(not(target_os = "linux"))]
    mod portable {
        use std::io;
        use std::os::fd::RawFd;

        const F_SETFL: i32 = 4;
        const O_NONBLOCK: i32 = 0o4000;

        extern "C" {
            fn pipe(fds: *mut i32) -> i32;
            fn fcntl(fd: i32, cmd: i32, ...) -> i32;
        }

        pub fn nonblocking_pipe() -> io::Result<(RawFd, RawFd)> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } < 0 {
                    return Err(io::Error::last_os_error());
                }
            }
            Ok((fds[0], fds[1]))
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub use portable::*;
}

/// Shared registration state: every backend maps delivered fds back to
/// tokens through this table, and waker read-ends are drained through it.
struct Shared {
    regs: Mutex<HashMap<RawFd, (Token, Interest)>>,
    waker_fds: Mutex<Vec<RawFd>>,
    backend: BackendImpl,
}

enum BackendImpl {
    #[cfg(target_os = "linux")]
    Epoll {
        epfd: RawFd,
    },
    PollSyscall,
}

impl Drop for Shared {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let BackendImpl::Epoll { epfd } = self.backend {
            sys::close_fd(epfd);
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut m = sys::EPOLLRDHUP;
    if interest.is_readable() {
        m |= sys::EPOLLIN;
    }
    if interest.is_writable() {
        m |= sys::EPOLLOUT;
    }
    m
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            if d.is_zero() {
                0
            } else {
                // Round up so a 100µs deadline does not busy-spin at 0ms.
                i32::try_from(d.as_millis().max(1)).unwrap_or(i32::MAX)
            }
        }
    }
}

/// The registration handle: shared by [`Poll`] and every [`Waker`], and
/// cheaply cloneable across threads.
#[derive(Clone)]
pub struct Registry {
    shared: Arc<Shared>,
}

impl Registry {
    fn register_fd(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut regs = self.shared.regs.lock();
        if regs.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} is already registered"),
            ));
        }
        match self.shared.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { epfd } => {
                sys::ctl(epfd, sys::EPOLL_CTL_ADD, fd, epoll_mask(interest))?;
            }
            BackendImpl::PollSyscall => {}
        }
        regs.insert(fd, (token, interest));
        Ok(())
    }

    /// Registers an event source under `token` with the given interest.
    /// The caller owns the fd: keep it alive while registered, and
    /// [`Registry::deregister`] before closing it.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.register_fd(source.as_raw_fd(), token, interest)
    }

    /// Replaces an existing registration's token and interest.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        let mut regs = self.shared.regs.lock();
        if !regs.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            ));
        }
        match self.shared.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { epfd } => {
                sys::ctl(epfd, sys::EPOLL_CTL_MOD, fd, epoll_mask(interest))?;
            }
            BackendImpl::PollSyscall => {}
        }
        regs.insert(fd, (token, interest));
        Ok(())
    }

    /// Removes a registration. Safe to call for an fd that was never
    /// registered (a no-op), so close paths need no bookkeeping.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.deregister_fd(source.as_raw_fd())
    }

    fn deregister_fd(&self, fd: RawFd) -> io::Result<()> {
        let mut regs = self.shared.regs.lock();
        if regs.remove(&fd).is_none() {
            return Ok(());
        }
        match self.shared.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { epfd } => {
                // The fd may already be closed (kernel auto-removed it);
                // that is fine, the table entry is what mattered.
                let _ = sys::ctl(epfd, sys::EPOLL_CTL_DEL, fd, 0);
            }
            BackendImpl::PollSyscall => {}
        }
        Ok(())
    }
}

/// The readiness poller. One per event-loop thread; [`Registry`] clones
/// (and [`Waker`]s built from them) may be shared across threads.
pub struct Poll {
    registry: Registry,
    #[cfg(target_os = "linux")]
    epoll_buf: Vec<sys::EpollEvent>,
}

impl Poll {
    /// A poller on the platform's best backend — epoll on Linux, `poll(2)`
    /// elsewhere. `CC_MIO_FORCE_POLL=1` forces the `poll(2)` fallback.
    pub fn new() -> io::Result<Poll> {
        if std::env::var("CC_MIO_FORCE_POLL").is_ok_and(|v| v == "1") {
            return Poll::with_poll_fallback();
        }
        #[cfg(target_os = "linux")]
        {
            let epfd = sys::create()?;
            Ok(Poll {
                registry: Registry {
                    shared: Arc::new(Shared {
                        regs: Mutex::new(HashMap::new()),
                        waker_fds: Mutex::new(Vec::new()),
                        backend: BackendImpl::Epoll { epfd },
                    }),
                },
                epoll_buf: Vec::new(),
            })
        }
        #[cfg(not(target_os = "linux"))]
        Poll::with_poll_fallback()
    }

    /// A poller on the portable `poll(2)` backend, regardless of platform.
    pub fn with_poll_fallback() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                shared: Arc::new(Shared {
                    regs: Mutex::new(HashMap::new()),
                    waker_fds: Mutex::new(Vec::new()),
                    backend: BackendImpl::PollSyscall,
                }),
            },
            #[cfg(target_os = "linux")]
            epoll_buf: Vec::new(),
        })
    }

    /// The registration handle.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Waits for readiness on the registered sources, filling `events`.
    /// `None` blocks indefinitely; `Some(d)` returns (possibly empty)
    /// after at most roughly `d`. Waker pipes are drained before their
    /// events are delivered, so one `wake()` is one delivered event.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let ms = timeout_ms(timeout);
        let shared = Arc::clone(&self.registry.shared);
        match shared.backend {
            #[cfg(target_os = "linux")]
            BackendImpl::Epoll { epfd } => {
                let n = match sys::wait(epfd, &mut self.epoll_buf, events.capacity, ms) {
                    Ok(n) => n,
                    // A signal is a spurious (empty) wakeup, like mio's.
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                    Err(e) => return Err(e),
                };
                let regs = shared.regs.lock();
                let wakers = shared.waker_fds.lock();
                for raw in self.epoll_buf.iter().take(n) {
                    let fd = raw.data as RawFd;
                    let Some(&(token, _)) = regs.get(&fd) else { continue };
                    if wakers.contains(&fd) {
                        sys::drain(fd);
                    }
                    let bits = raw.events;
                    let closed = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                    events.inner.push(Event {
                        token,
                        readable: bits & sys::EPOLLIN != 0 || closed,
                        writable: bits & sys::EPOLLOUT != 0 || closed,
                    });
                }
            }
            BackendImpl::PollSyscall => {
                let mut fds: Vec<sys::Pollfd> = {
                    let regs = shared.regs.lock();
                    regs.iter()
                        .map(|(&fd, &(_, interest))| sys::Pollfd {
                            fd,
                            events: {
                                let mut e = 0i16;
                                if interest.is_readable() {
                                    e |= sys::POLLIN;
                                }
                                if interest.is_writable() {
                                    e |= sys::POLLOUT;
                                }
                                e
                            },
                            revents: 0,
                        })
                        .collect()
                };
                let n = if fds.is_empty() {
                    // Nothing registered: just honor the timeout.
                    if ms != 0 {
                        std::thread::sleep(Duration::from_millis(if ms < 0 {
                            10
                        } else {
                            ms as u64
                        }));
                    }
                    0
                } else {
                    match sys::poll_fds(&mut fds, ms) {
                        Ok(n) => n,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                        Err(e) => return Err(e),
                    }
                };
                if n > 0 {
                    let regs = shared.regs.lock();
                    let wakers = shared.waker_fds.lock();
                    for pfd in fds.iter().filter(|p| p.revents != 0) {
                        if events.inner.len() >= events.capacity {
                            break;
                        }
                        let Some(&(token, _)) = regs.get(&pfd.fd) else { continue };
                        if pfd.revents & sys::POLLNVAL != 0 {
                            continue; // closed behind our back; skip
                        }
                        if wakers.contains(&pfd.fd) {
                            sys::drain(pfd.fd);
                        }
                        let closed = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
                        events.inner.push(Event {
                            token,
                            readable: pfd.revents & sys::POLLIN != 0 || closed,
                            writable: pfd.revents & sys::POLLOUT != 0 || closed,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread: the
/// poller gets one event carrying the waker's token. Send + Sync; clone
/// the `Arc` you wrap it in rather than the waker itself.
pub struct Waker {
    registry: Registry,
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// A waker delivering `token` to the poll behind `registry`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let (read_fd, write_fd) = sys::nonblocking_pipe()?;
        registry.shared.waker_fds.lock().push(read_fd);
        registry.register_fd(read_fd, token, Interest::READABLE)?;
        Ok(Waker { registry: registry.clone(), read_fd, write_fd })
    }

    /// Wakes the poller. Cheap, non-blocking, and coalescing: a pending
    /// undelivered wake absorbs further wakes.
    pub fn wake(&self) -> io::Result<()> {
        sys::write_byte(self.write_fd)
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = self.registry.deregister_fd(self.read_fd);
        self.registry.shared.waker_fds.lock().retain(|&fd| fd != self.read_fd);
        sys::close_fd(self.read_fd);
        sys::close_fd(self.write_fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        let a = TcpStream::connect(l.local_addr().expect("addr")).expect("connect");
        let (b, _) = l.accept().expect("accept");
        a.set_nonblocking(true).expect("nonblocking");
        b.set_nonblocking(true).expect("nonblocking");
        (a, b)
    }

    fn backends() -> Vec<Poll> {
        vec![Poll::new().expect("poll"), Poll::with_poll_fallback().expect("poll2")]
    }

    #[test]
    fn readable_event_is_delivered_with_token() {
        for mut poll in backends() {
            let (a, mut b) = pair();
            poll.registry().register(&a, Token(7), Interest::READABLE).expect("register");
            let mut events = Events::with_capacity(8);
            poll.poll(&mut events, Some(Duration::from_millis(0))).expect("poll");
            assert!(events.is_empty(), "no data yet");
            b.write_all(b"x").expect("write");
            poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
            let ev = events.iter().next().expect("one event");
            assert_eq!(ev.token(), Token(7));
            assert!(ev.is_readable());
            poll.registry().deregister(&a).expect("deregister");
            poll.poll(&mut events, Some(Duration::from_millis(0))).expect("poll");
            assert!(events.is_empty(), "deregistered fd is silent");
        }
    }

    #[test]
    fn writable_interest_and_reregister() {
        for mut poll in backends() {
            let (a, _b) = pair();
            poll.registry().register(&a, Token(1), Interest::READABLE).expect("register");
            let mut events = Events::with_capacity(8);
            poll.poll(&mut events, Some(Duration::from_millis(0))).expect("poll");
            assert!(events.is_empty());
            poll.registry()
                .reregister(&a, Token(2), Interest::READABLE | Interest::WRITABLE)
                .expect("reregister");
            poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
            let ev = events.iter().next().expect("writable now");
            assert_eq!(ev.token(), Token(2));
            assert!(ev.is_writable());
        }
    }

    #[test]
    fn peer_close_is_surfaced_as_readable() {
        for mut poll in backends() {
            let (a, b) = pair();
            poll.registry().register(&a, Token(3), Interest::READABLE).expect("register");
            drop(b);
            let mut events = Events::with_capacity(8);
            poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
            let ev = events.iter().next().expect("close event");
            assert!(ev.is_readable(), "hang-up folds into readability");
            let mut a = a;
            let mut buf = [0u8; 8];
            assert_eq!(a.read(&mut buf).expect("eof"), 0);
        }
    }

    #[test]
    fn waker_wakes_across_threads_and_coalesces() {
        for mut poll in backends() {
            let waker = Arc::new(Waker::new(poll.registry(), Token(0)).expect("waker"));
            let w2 = Arc::clone(&waker);
            let h = std::thread::spawn(move || {
                w2.wake().expect("wake");
                w2.wake().expect("wake again");
            });
            // Both wakes are pending before delivery, so the drain below
            // consumes them together.
            h.join().expect("join");
            let mut events = Events::with_capacity(8);
            poll.poll(&mut events, Some(Duration::from_secs(5))).expect("poll");
            assert_eq!(events.iter().next().expect("woken").token(), Token(0));
            // Drained on delivery: no event storm afterwards.
            poll.poll(&mut events, Some(Duration::from_millis(10))).expect("poll");
            assert!(events.is_empty(), "wakes coalesced and drained");
        }
    }

    #[test]
    fn double_register_is_rejected_and_deregister_is_idempotent() {
        for poll in backends() {
            let (a, _b) = pair();
            poll.registry().register(&a, Token(1), Interest::READABLE).expect("register");
            let err = poll.registry().register(&a, Token(2), Interest::READABLE).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
            poll.registry().deregister(&a).expect("deregister");
            poll.registry().deregister(&a).expect("idempotent");
            let err = poll.registry().reregister(&a, Token(1), Interest::READABLE).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::NotFound);
        }
    }

    #[test]
    fn timeout_expires_with_no_events() {
        for mut poll in backends() {
            let (a, _b) = pair();
            poll.registry().register(&a, Token(1), Interest::READABLE).expect("register");
            let mut events = Events::with_capacity(8);
            let t0 = std::time::Instant::now();
            poll.poll(&mut events, Some(Duration::from_millis(30))).expect("poll");
            assert!(events.is_empty());
            assert!(t0.elapsed() >= Duration::from_millis(25), "timeout honored");
        }
    }
}
