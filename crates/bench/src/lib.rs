//! # cc-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ConnectIt evaluation (see DESIGN.md §3 for the per-experiment index).
//! Each experiment is a `run(scale)` function under [`experiments`], with a
//! thin `repro_*` binary wrapper; `repro_all` runs the lot.
//!
//! Environment knobs: `CC_BENCH_SCALE` (0/1/2 graph sizes), `CC_BENCH_REPS`
//! (timing repetitions), `CC_BENCH_FULL=1` (full variant space in Table 3),
//! `CC_NUM_THREADS` (pool size).

#![warn(missing_docs)]

pub mod datasets;
pub mod experiments;
pub mod harness;
pub mod regression;
