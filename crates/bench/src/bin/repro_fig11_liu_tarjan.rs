//! Reproduction binary: see `cc_bench::experiments::fig11`.
fn main() {
    cc_bench::experiments::fig11::run(cc_bench::datasets::bench_scale());
}
