//! Reproduction binary: see `cc_bench::experiments::table2`.
fn main() {
    cc_bench::experiments::table2::run(cc_bench::datasets::bench_scale());
}
