//! Reproduction binary: see `cc_bench::experiments::fig6`.
fn main() {
    cc_bench::experiments::fig6::run(cc_bench::datasets::bench_scale());
}
