//! Reproduction binary: see `cc_bench::experiments::fig17`.
fn main() {
    cc_bench::experiments::fig17::run(cc_bench::datasets::bench_scale());
}
