//! Reproduction binary: see `cc_bench::experiments::table4`.
fn main() {
    cc_bench::experiments::table4::run(cc_bench::datasets::bench_scale());
}
