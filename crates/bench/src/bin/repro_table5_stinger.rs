//! Reproduction binary: see `cc_bench::experiments::table5`.
fn main() {
    cc_bench::experiments::table5::run(cc_bench::datasets::bench_scale());
}
