//! Reproduction binary: see `cc_bench::experiments::fig18`.
fn main() {
    cc_bench::experiments::fig18::run(cc_bench::datasets::bench_scale());
}
