//! Runs every reproduction experiment in sequence.
fn main() {
    use cc_bench::experiments as e;
    let s = cc_bench::datasets::bench_scale();
    let t0 = std::time::Instant::now();
    e::table2::run(s);
    e::table1::run(s);
    e::table3::run(s);
    e::fig3::run(s);
    e::fig6::run(s);
    e::fig11::run(s);
    e::table4::run(s);
    e::fig4::run(s);
    e::fig17::run(s);
    e::fig18::run(s);
    e::table5::run(s);
    e::table6::run(s);
    e::fig19::run(s);
    e::fig22::run(s);
    e::table8::run(s);
    e::forest::run(s);
    e::ablations::run(s);
    println!("\nall experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}
