//! Reproduction binary: see `cc_bench::experiments::fig4`.
fn main() {
    cc_bench::experiments::fig4::run(cc_bench::datasets::bench_scale());
}
