//! `connectit-bench` — benchmark artifact tooling. The one subcommand,
//! `check`, is the CI bench-regression gate: it compares freshly emitted
//! `BENCH_*.json` artifacts against committed baselines and exits
//! non-zero on any regression, printing a markdown table per artifact.
//!
//! ```text
//! connectit-bench check [--baselines DIR] [--fresh DIR] [--tolerance F]
//!                       [NAME...]
//! ```
//!
//! `NAME`s are artifact stems (`wal`, `dispatch`, `replication`,
//! `dynamic`, `obs`, `net`, `analytics`, `subs` by default;
//! `BENCH_<name>.json`
//! is loaded from both directories).
//! Scale-free ratios and correctness counters are gated (see
//! `cc_bench::regression::gate_for`); absolute timings are reported as
//! `info` only — they are machine-bound and the baseline was written on
//! a different machine. `--tolerance` sets the default per-metric
//! tolerance (1.25 unless overridden by the gate table; correctness
//! metrics are always exact).

use cc_bench::regression::check_artifact;
use std::path::PathBuf;
use std::process::ExitCode;

const DEFAULT_BENCHES: [&str; 8] =
    ["wal", "dispatch", "replication", "dynamic", "obs", "net", "analytics", "subs"];

fn usage() -> ExitCode {
    eprintln!(
        "usage: connectit-bench check [--baselines DIR] [--fresh DIR] [--tolerance F] [NAME...]\n\
         \x20  compares fresh BENCH_<NAME>.json artifacts in --fresh (default .) against\n\
         \x20  the committed baselines in --baselines (default baselines/); exits non-zero\n\
         \x20  on any gated-metric regression. Default NAMEs: wal dispatch replication\n\
         \x20  dynamic obs net analytics subs"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("check") {
        return usage();
    }
    let mut baselines = PathBuf::from("baselines");
    let mut fresh = PathBuf::from(".");
    let mut tolerance = 1.25f64;
    let mut names: Vec<String> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baselines" => match it.next() {
                Some(v) => baselines = PathBuf::from(v),
                None => return usage(),
            },
            "--fresh" => match it.next() {
                Some(v) => fresh = PathBuf::from(v),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1.0 => tolerance = v,
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            flag if flag.starts_with('-') => {
                eprintln!("connectit-bench: unknown flag {flag:?}");
                return usage();
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = DEFAULT_BENCHES.iter().map(|s| s.to_string()).collect();
    }

    let mut regressions = 0usize;
    let mut failures = 0usize;
    for name in &names {
        let artifact = format!("BENCH_{name}.json");
        match check_artifact(&artifact, &baselines, &fresh, tolerance) {
            Ok(report) => {
                println!("{}", report.markdown());
                let r = report.regressions();
                if r > 0 {
                    eprintln!("connectit-bench: {artifact}: {r} metric(s) REGRESSED");
                }
                regressions += r;
            }
            Err(e) => {
                eprintln!("connectit-bench: {artifact}: {e}");
                failures += 1;
            }
        }
    }
    if regressions + failures > 0 {
        eprintln!(
            "connectit-bench: check FAILED ({regressions} regression(s), {failures} unreadable \
             artifact(s); default tolerance {tolerance}x)"
        );
        ExitCode::FAILURE
    } else {
        println!(
            "connectit-bench: check ok ({} artifact(s), default tolerance {tolerance}x)",
            names.len()
        );
        ExitCode::SUCCESS
    }
}
