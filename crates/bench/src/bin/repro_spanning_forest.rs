//! Reproduction binary: see `cc_bench::experiments::forest`.
fn main() {
    cc_bench::experiments::forest::run(cc_bench::datasets::bench_scale());
}
