//! Reproduction binary: see `cc_bench::experiments::fig3`.
fn main() {
    cc_bench::experiments::fig3::run(cc_bench::datasets::bench_scale());
}
