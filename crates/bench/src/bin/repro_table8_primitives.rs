//! Reproduction binary: see `cc_bench::experiments::table8`.
fn main() {
    cc_bench::experiments::table8::run(cc_bench::datasets::bench_scale());
}
