//! Reproduction binary: see `cc_bench::experiments::table6`.
fn main() {
    cc_bench::experiments::table6::run(cc_bench::datasets::bench_scale());
}
