//! Reproduction binary: see `cc_bench::experiments::fig19`.
fn main() {
    cc_bench::experiments::fig19::run(cc_bench::datasets::bench_scale());
}
