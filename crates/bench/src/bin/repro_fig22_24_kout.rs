//! Reproduction binary: see `cc_bench::experiments::fig22`.
fn main() {
    cc_bench::experiments::fig22::run(cc_bench::datasets::bench_scale());
}
