//! Reproduction binary: see `cc_bench::experiments::table3`.
fn main() {
    cc_bench::experiments::table3::run(cc_bench::datasets::bench_scale());
}
