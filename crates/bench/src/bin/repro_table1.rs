//! Reproduction binary: see `cc_bench::experiments::table1`.
fn main() {
    cc_bench::experiments::table1::run(cc_bench::datasets::bench_scale());
}
