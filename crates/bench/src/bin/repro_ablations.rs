//! Reproduction binary: see `cc_bench::experiments::ablations`.
fn main() {
    cc_bench::experiments::ablations::run(cc_bench::datasets::bench_scale());
}
