//! The dataset registry: laptop-scale synthetic analogs of the paper's
//! graph inputs (Table 2). See DESIGN.md §2 for the substitution rationale.
//!
//! Sizes scale with the `CC_BENCH_SCALE` environment variable
//! (0 = quick default, 1 = medium, 2 = large).

use cc_graph::builder::{build_undirected, build_undirected_ordered};
use cc_graph::generators::{barabasi_albert, clustered_web, disjoint_union, grid2d, rmat_default};
use cc_graph::{CsrGraph, EdgeList};

/// A named benchmark graph.
pub struct Dataset {
    /// Registry name, e.g. `road_sim`.
    pub name: &'static str,
    /// Which paper input this stands in for.
    pub analog_of: &'static str,
    /// The symmetrized graph.
    pub graph: CsrGraph,
}

/// Benchmark scale factor from `CC_BENCH_SCALE` (0, 1, or 2).
pub fn bench_scale() -> u32 {
    std::env::var("CC_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0).min(2)
}

/// Builds the full registry at the given scale.
pub fn registry(scale: u32) -> Vec<Dataset> {
    let s = scale.min(2);
    // Base exponent: scale 0 -> 2^15-ish graphs, scale 2 -> 2^19-ish.
    let b = 15 + 2 * s;
    vec![
        Dataset {
            name: "road_sim",
            analog_of: "road_usa (high diameter, low degree)",
            graph: grid2d(1 << (b / 2 + 1), 1 << (b / 2)),
        },
        Dataset {
            name: "lj_sim",
            analog_of: "LiveJournal (social, moderate density)",
            graph: from_el(rmat_default(b, (1usize << b) * 9, 0x11)),
        },
        Dataset {
            name: "orkut_sim",
            analog_of: "com-Orkut (social, dense)",
            graph: from_el(rmat_default(b - 1, (1usize << (b - 1)) * 38, 0x22)),
        },
        Dataset {
            name: "twitter_sim",
            analog_of: "Twitter (large, skewed)",
            graph: from_el(rmat_default(b + 1, (1usize << (b + 1)) * 14, 0x33)),
        },
        Dataset {
            name: "friendster_sim",
            analog_of: "Friendster (large, flatter degree)",
            graph: from_el(barabasi_albert(1 << (b + 1), 7, 0x44)),
        },
        Dataset {
            name: "clueweb_sim",
            analog_of: "ClueWeb (crawl-ordered web, many components)",
            graph: web_like(1 << (b - 6), 0x55),
        },
        Dataset {
            name: "hyperlink_sim",
            analog_of: "Hyperlink2012/2014 (largest; crawl-ordered, many components)",
            graph: web_like(1 << (b - 5), 0x66),
        },
    ]
}

/// A quick subset for the figure sweeps (mirrors the four graphs the paper
/// plots in Figures 19–24).
pub fn sweep_registry(scale: u32) -> Vec<Dataset> {
    registry(scale)
        .into_iter()
        .filter(|d| {
            matches!(d.name, "road_sim" | "friendster_sim" | "clueweb_sim" | "hyperlink_sim")
        })
        .collect()
}

fn from_el(el: EdgeList) -> CsrGraph {
    build_undirected(el.num_vertices, &el.edges)
}

/// Crawl-ordered web analog: a clustered web (domain-local adjacency
/// ordering) plus a tail of small disconnected components, preserving both
/// ClueWeb/Hyperlink phenomena the paper studies — the kout-afforest
/// failure mode and the massive-component-plus-many-tiny structure.
fn web_like(num_blocks: usize, seed: u64) -> CsrGraph {
    let giant = clustered_web(num_blocks, 64, 8, 0.3, seed);
    // Tail of small components: ~6% extra vertices in 48-vertex blobs.
    let tail_blobs = (num_blocks * 64 / 800).max(2);
    let mut parts = vec![giant];
    for i in 0..tail_blobs {
        parts.push(cc_graph::generators::erdos_renyi(48, 96, seed ^ (i as u64 + 1)));
    }
    let merged = disjoint_union(&parts);
    build_undirected_ordered(merged.num_vertices, &merged.edges)
}

/// COO update stream for the streaming experiments: the graph's own edges
/// (optionally subsampled), as the paper does for its Type-(i) inputs.
pub fn update_stream(g: &CsrGraph, fraction: f64) -> Vec<(u32, u32)> {
    let all = g.to_edge_list().edges;
    if fraction >= 1.0 {
        return all;
    }
    let keep = ((all.len() as f64) * fraction) as usize;
    all.into_iter().take(keep).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_at_scale_zero() {
        let datasets = registry(0);
        assert_eq!(datasets.len(), 7);
        for d in &datasets {
            assert!(d.graph.num_vertices() > 1000, "{}", d.name);
            assert!(d.graph.num_edges() > 1000, "{}", d.name);
        }
    }

    #[test]
    fn web_like_has_many_components_and_a_giant() {
        let g = web_like(64, 1);
        let st = cc_graph::stats::component_stats(&g);
        assert!(st.num_components > 1);
        assert!(st.largest_size * 2 > g.num_vertices());
    }

    #[test]
    fn sweep_registry_is_a_subset() {
        assert_eq!(sweep_registry(0).len(), 4);
    }
}
