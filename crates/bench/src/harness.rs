//! Timing and table-formatting helpers shared by every `repro_*` binary,
//! plus machine-readable artifact emission (`BENCH_*.json`) so future
//! sessions have a perf trajectory to compare against.

use std::time::Instant;

/// Times `f`, returning the fastest of `reps` runs (the paper reports
/// best-of-three style parallel timings) together with the last result.
pub fn time_best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

/// Number of timing repetitions from `CC_BENCH_REPS` (default 3).
pub fn reps() -> usize {
    std::env::var("CC_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3).max(1)
}

/// Formats seconds like the paper's tables (`2.80e-2` / `0.316` / `13.9`).
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s < 0.095 {
        format!("{s:.2e}")
    } else if s < 10.0 {
        format!("{s:.3}")
    } else {
        format!("{s:.1}")
    }
}

/// Formats a throughput like the paper's Table 4 (`7.16e9`).
pub fn fmt_rate(r: f64) -> String {
    format!("{r:.2e}")
}

/// Formats a ratio as a slowdown/speedup factor.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// A simple fixed-width text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i == 0 {
                    out.push_str(&format!("{c:<w$}"));
                } else {
                    out.push_str(&format!("  {c:>w$}"));
                }
            }
            println!("{out}");
        };
        line(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Writes a machine-readable benchmark artifact named `name` (e.g.
/// `BENCH_dispatch.json`) into `CC_BENCH_JSON_DIR` (default: the current
/// directory) and returns the path written.
pub fn write_bench_json(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var("CC_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Escapes a string for embedding in a JSON document (the workspace has
/// no serde; bench artifacts are assembled by hand).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Geometric mean of a nonempty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Pearson correlation coefficient between two equal-length series.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_matches_paper_styles() {
        assert_eq!(fmt_secs(0.028), "2.80e-2");
        assert_eq!(fmt_secs(0.316), "0.316");
        assert_eq!(fmt_secs(13.91), "13.9");
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x", "1"]);
        t.print();
    }

    #[test]
    fn time_best_of_runs() {
        let (secs, v) = time_best_of(2, || 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
