//! Tables 6 and 7: sampling-phase quality — running time, vertex coverage
//! of the most frequent component, and the fraction of inter-component
//! edges remaining, for BFS, LDD, and k-out(hybrid) sampling.

use crate::datasets::registry;
use crate::harness::{fmt_secs, reps, time_best_of, Table};
use connectit::sampling::{inter_component_edges, run_sampling};
use connectit::SamplingMethod;

/// Regenerates Tables 6–7.
pub fn run(scale: u32) {
    let datasets = registry(scale);
    let r = reps();
    println!("== Tables 6-7: sampling quality ==\n");
    let methods = [
        ("BFS", SamplingMethod::bfs_default()),
        ("LDD", SamplingMethod::ldd_default()),
        ("KOut(Hybrid)", SamplingMethod::kout_default()),
    ];
    let mut t = Table::new(vec!["Graph", "Method", "Time(s)", "Coverage", "InterComp edges"]);
    for d in &datasets {
        let m = d.graph.num_directed_edges();
        for (name, method) in &methods {
            let (secs, out) = time_best_of(r, || run_sampling(&d.graph, method, 5, false));
            let cov = 100.0 * out.frequent_count as f64 / d.graph.num_vertices() as f64;
            let ic = inter_component_edges(&d.graph, &out.labels);
            t.row(vec![
                d.name.to_string(),
                name.to_string(),
                fmt_secs(secs),
                format!("{cov:.1}%"),
                format!("{:.3}%", 100.0 * ic as f64 / m as f64),
            ]);
        }
    }
    t.print();
    println!("\nPaper shape to verify: sub-percent inter-component edges on social/web");
    println!("graphs for all three schemes; BFS covers ~100% of connected graphs; the");
    println!("k-out residue is far below the n/k bound of Holm et al.");
}
