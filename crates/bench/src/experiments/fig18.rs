//! Figure 18: per-batch latency while streaming the largest graph's update
//! sample at several batch sizes — the paper reports medians within 1–2% of
//! means (highly regular latency) and linear growth with batch size.
//!
//! Each run finishes with a query batch whose find-walk hop counts are
//! recorded by the streaming structure
//! ([`StreamingConnectivity::query_path_lengths`]): the mean/max
//! query-path lengths explain the latency differences between variants
//! (the Figures 6–7 argument applied to the query side).

use crate::datasets::{registry, update_stream};
use crate::harness::Table;
use cc_parallel::SplitMix64;
use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};
use connectit::{LtScheme, StreamAlgorithm, StreamingConnectivity, Update};

fn latency_algorithms() -> Vec<(&'static str, StreamAlgorithm)> {
    vec![
        ("Union-Rem-CAS", StreamAlgorithm::UnionFind(UfSpec::fastest())),
        (
            "Union-Rem-Lock",
            StreamAlgorithm::UnionFind(UfSpec::rem(
                UniteKind::RemLock,
                SpliceKind::SplitOne,
                FindKind::Naive,
            )),
        ),
        ("Union-Async", StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Async, FindKind::Naive))),
        ("Liu-Tarjan (CRFA)", StreamAlgorithm::LiuTarjan(LtScheme::crfa())),
    ]
}

/// Regenerates the latency distributions.
pub fn run(scale: u32) {
    let d = registry(scale)
        .into_iter()
        .find(|d| d.name == "hyperlink_sim")
        .expect("registry contains hyperlink_sim");
    // 10% sample, as in the paper.
    let edges = update_stream(&d.graph, 0.1);
    let n = d.graph.num_vertices();
    println!(
        "== Figure 18: per-batch latency on {} (10% sample, {} updates) ==\n",
        d.name,
        edges.len()
    );
    let mut t = Table::new(vec![
        "Algorithm",
        "batch",
        "batches",
        "mean(s)",
        "median(s)",
        "p99(s)",
        "median/mean",
    ]);
    let mut qt =
        Table::new(vec!["Algorithm", "queries", "query-batch(s)", "mean path", "max path"]);
    for (name, alg) in latency_algorithms() {
        for bs in [1_000usize, 10_000, 100_000] {
            if bs > edges.len() {
                continue;
            }
            let s = StreamingConnectivity::new(n, &alg, 1);
            let mut lat: Vec<f64> = Vec::new();
            for chunk in edges.chunks(bs) {
                let batch: Vec<Update> = chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
                let t0 = std::time::Instant::now();
                s.process_batch(&batch);
                lat.push(t0.elapsed().as_secs_f64());
            }
            lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let mean = lat.iter().sum::<f64>() / lat.len() as f64;
            let median = lat[lat.len() / 2];
            let p99 = lat[(lat.len() as f64 * 0.99) as usize - 1];
            t.row(vec![
                name.to_string(),
                bs.to_string(),
                lat.len().to_string(),
                format!("{mean:.2e}"),
                format!("{median:.2e}"),
                format!("{p99:.2e}"),
                format!("{:.3}", median / mean),
            ]);
            if bs == 10_000 {
                // One query batch against the loaded structure: the
                // recorded find-walk hops are the query-path statistic.
                let mut rng = SplitMix64::new(0xf1618);
                let queries: Vec<Update> = (0..50_000)
                    .map(|_| {
                        let u = (rng.next_u64() % n as u64) as u32;
                        let v = (rng.next_u64() % n as u64) as u32;
                        Update::Query(u, v)
                    })
                    .collect();
                let t0 = std::time::Instant::now();
                s.process_batch(&queries);
                let qsecs = t0.elapsed().as_secs_f64();
                let pl = s.query_path_lengths();
                let (mean_s, max_s) = if pl.operations == 0 {
                    ("-".to_string(), "-".to_string())
                } else {
                    (format!("{:.3}", pl.mean()), pl.max.to_string())
                };
                qt.row(vec![
                    name.to_string(),
                    queries.len().to_string(),
                    format!("{qsecs:.2e}"),
                    mean_s,
                    max_s,
                ]);
            }
        }
    }
    t.print();
    println!("\n== Query-path lengths (hops per query find, 10k-insert batches) ==\n");
    qt.print();
    println!("\nPaper shape to verify: median/mean near 1.0 (regular latency);");
    println!("latency grows ~linearly with batch size; Rem-CAS lowest;");
    println!("query-path lengths track query latency (synchronous variants answer");
    println!("from depth-1 trees and report no union-find query walks).");
}
