//! Table 8: MapEdges / GatherEdges baselines vs the fastest ConnectIt
//! configuration — empirical lower bounds showing sampled connectivity
//! costs about as much as one indirect read over every edge.

use crate::datasets::registry;
use crate::harness::{fmt_secs, reps, time_best_of, Table};
use cc_graph::primitives::{gather_edges, map_edges};
use connectit::{connectivity_seeded, FinishMethod, SamplingMethod};

/// Regenerates Table 8.
pub fn run(scale: u32) {
    let datasets = registry(scale);
    let r = reps();
    println!("== Table 8: MapEdges / GatherEdges vs fastest ConnectIt ==\n");
    let mut t = Table::new(vec![
        "Graph",
        "MapEdges",
        "GatherEdges",
        "ConnectIt (No Sample)",
        "ConnectIt (Sample)",
    ]);
    for d in &datasets {
        let n = d.graph.num_vertices();
        let data: Vec<u32> = (0..n as u32).collect();
        let (map_t, _) = time_best_of(r, || map_edges(&d.graph));
        let (gather_t, _) = time_best_of(r, || gather_edges(&d.graph, &data));
        let (nos_t, _) = time_best_of(r, || {
            connectivity_seeded(&d.graph, &SamplingMethod::None, &FinishMethod::fastest(), 3)
        });
        let (samp_t, _) = time_best_of(r, || {
            connectivity_seeded(
                &d.graph,
                &SamplingMethod::kout_default(),
                &FinishMethod::fastest(),
                3,
            )
        });
        t.row(vec![
            d.name.to_string(),
            fmt_secs(map_t),
            fmt_secs(gather_t),
            fmt_secs(nos_t),
            fmt_secs(samp_t),
        ]);
    }
    t.print();
    println!("\nPaper shape to verify: GatherEdges an order of magnitude above MapEdges");
    println!("(indirect reads); sampled ConnectIt lands between MapEdges and ~GatherEdges,");
    println!("i.e. connectivity for about the price of one indirect sweep over the edges.");
}
