//! Table 2: dataset statistics — vertices, edges, diameter estimate, exact
//! component count, and largest component size.

use crate::datasets::registry;
use crate::harness::Table;
use cc_graph::bfs::approx_diameter;
use cc_graph::stats::component_stats;

/// Regenerates Table 2 for the synthetic registry.
pub fn run(scale: u32) {
    println!("== Table 2: graph inputs ==\n");
    let mut t = Table::new(vec![
        "Dataset",
        "n",
        "m",
        "Diam.(est)",
        "Num. Comps.",
        "Largest Comp.",
        "analog of",
    ]);
    for d in registry(scale) {
        let st = component_stats(&d.graph);
        let diam = approx_diameter(&d.graph, 3, 7);
        t.row(vec![
            d.name.to_string(),
            d.graph.num_vertices().to_string(),
            d.graph.num_edges().to_string(),
            diam.to_string(),
            st.num_components.to_string(),
            st.largest_size.to_string(),
            d.analog_of.to_string(),
        ]);
    }
    t.print();
}
