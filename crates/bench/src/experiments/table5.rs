//! Table 5: STINGER vs ConnectIt streaming — batch updates on an initially
//! empty graph with edges sampled from an RMAT generator, across batch
//! sizes 10 .. 2·10^6.

use crate::harness::{fmt_secs, Table};
use cc_baselines::StingerSim;
use cc_graph::generators::rmat_default;
use cc_unionfind::UfSpec;
use connectit::{StreamAlgorithm, StreamingConnectivity, Update};

/// Regenerates Table 5.
pub fn run(scale: u32) {
    // The paper uses 2^20 vertices (STINGER cannot initialize beyond ~1M);
    // scale the analog down so even the scan-based baseline terminates fast.
    let s = 14 + 2 * scale;
    let n = 1usize << s;
    let total = 2_000_000usize.min(n * 8);
    let edges = rmat_default(s, total, 0x99).edges;
    println!("== Table 5: STINGER-sim vs ConnectIt (Union-Rem-CAS), RMAT n=2^{s} ==\n");
    let mut t = Table::new(vec![
        "Batch Size",
        "STINGER-sim (s)",
        "STINGER-sim up/s",
        "ConnectIt (s)",
        "ConnectIt up/s",
        "speedup",
    ]);
    let batch_sizes = [10usize, 100, 1_000, 10_000, 100_000, 1_000_000, 2_000_000];
    for &bs in &batch_sizes {
        let bs = bs.min(edges.len());
        let batch = &edges[..bs];
        // STINGER-sim: label-repair time only (the paper's methodology).
        let stinger = StingerSim::new(n);
        let st = stinger.batch_insert(batch).as_secs_f64();
        // ConnectIt: full batch processing.
        let cc = StreamingConnectivity::new(n, &StreamAlgorithm::UnionFind(UfSpec::fastest()), 1);
        let ops: Vec<Update> = batch.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
        let t0 = std::time::Instant::now();
        cc.process_batch(&ops);
        let ct = t0.elapsed().as_secs_f64();
        t.row(vec![
            bs.to_string(),
            fmt_secs(st),
            format!("{:.3e}", bs as f64 / st),
            fmt_secs(ct),
            format!("{:.3e}", bs as f64 / ct),
            format!("{:.0}x", st / ct),
        ]);
    }
    t.print();
    println!("\nPaper shape to verify: 3-5 orders of magnitude speedup over the");
    println!("STINGER-style baseline (1,461-28,364x in the paper), growing with batch size.");
}
