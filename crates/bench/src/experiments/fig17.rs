//! Figure 17: streaming throughput of the Union-Rem-CAS variants as a
//! function of the insert-to-query ratio, on permuted batches — the
//! experiment showing compressing finds win at query-heavy mixes and
//! FindNaive+SplitAtomicOne wins at insert-heavy mixes.

use crate::datasets::registry;
use crate::harness::{fmt_rate, Table};
use cc_graph::generators::random_permutation;
use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};
use connectit::{StreamAlgorithm, StreamingConnectivity, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rem_cas_variants() -> Vec<(String, UfSpec)> {
    let finds = [FindKind::Split, FindKind::Halve, FindKind::Naive];
    let splices = [SpliceKind::SplitOne, SpliceKind::HalveOne, SpliceKind::Splice];
    let mut out = Vec::new();
    for f in finds {
        for s in splices {
            let spec = UfSpec::rem(UniteKind::RemCas, s, f);
            if spec.is_valid() {
                out.push((format!("{};{}", f.name(), s.name()), spec));
            }
        }
    }
    out
}

/// Regenerates the insert-to-query ratio sweep.
pub fn run(scale: u32) {
    let datasets: Vec<_> =
        registry(scale).into_iter().filter(|d| matches!(d.name, "orkut_sim" | "lj_sim")).collect();
    let ratios = [0.05f64, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
    for d in datasets {
        let n = d.graph.num_vertices();
        let inserts = d.graph.to_edge_list().edges;
        println!("\n== Figure 17: throughput vs insert-to-query ratio on {} ==\n", d.name);
        let mut t = Table::new(
            std::iter::once("Rem-CAS variant".to_string())
                .chain(ratios.iter().map(|r| format!("ins={r}")))
                .collect::<Vec<_>>(),
        );
        // Permuted insert order (the paper permutes mixed batches).
        let perm = random_permutation(inserts.len(), 31);
        for (name, spec) in rem_cas_variants() {
            let alg = StreamAlgorithm::UnionFind(spec);
            let mut cells = vec![name];
            for &ratio in &ratios {
                let mut rng = StdRng::seed_from_u64(7);
                // Fixed inserts; queries generated to achieve the ratio.
                let queries_per_insert = (1.0 / ratio - 1.0).max(0.0);
                let mut batch: Vec<Update> = Vec::new();
                let mut owed = 0.0f64;
                for &pi in &perm {
                    let (u, v) = inserts[pi as usize];
                    batch.push(Update::Insert(u, v));
                    owed += queries_per_insert;
                    while owed >= 1.0 {
                        batch.push(Update::Query(
                            rng.gen_range(0..n as u32),
                            rng.gen_range(0..n as u32),
                        ));
                        owed -= 1.0;
                    }
                }
                let s = StreamingConnectivity::new(n, &alg, 1);
                let t0 = std::time::Instant::now();
                s.process_batch(&batch);
                cells.push(fmt_rate(batch.len() as f64 / t0.elapsed().as_secs_f64()));
            }
            t.row(cells);
        }
        t.print();
    }
    println!("\nPaper shape to verify: compressing finds ahead at query-heavy mixes;");
    println!("FindNaive variants ahead once the insert share passes ~0.6-0.7.");
}
