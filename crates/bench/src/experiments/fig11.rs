//! Figures 11–12: relative performance of the sixteen Liu–Tarjan variants
//! (connect rule x shortcut x alter, with/without RootUp), plus Stergiou,
//! in the No Sampling setting.

use crate::datasets::registry;
use crate::harness::{fmt_ratio, geomean, reps, time_best_of, Table};
use connectit::{connectivity_seeded, FinishMethod, LtScheme, SamplingMethod};

/// Regenerates the Liu–Tarjan heatmap.
pub fn run(scale: u32) {
    let datasets = registry(scale);
    let r = reps();
    println!("== Figure 11: Liu-Tarjan variants, No Sampling ==");
    println!("   (geomean slowdown vs fastest LT variant across {} graphs)\n", datasets.len());

    let schemes = LtScheme::all_schemes();
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for scheme in &schemes {
        let finish = FinishMethod::LiuTarjan(*scheme);
        let per: Vec<f64> = datasets
            .iter()
            .map(|d| {
                time_best_of(r, || connectivity_seeded(&d.graph, &SamplingMethod::None, &finish, 3))
                    .0
            })
            .collect();
        rows.push((scheme.name(), per));
    }
    // Stergiou as an extra row (the paper: "always slower than the fastest
    // LT variant").
    let stergiou: Vec<f64> = datasets
        .iter()
        .map(|d| {
            time_best_of(r, || {
                connectivity_seeded(&d.graph, &SamplingMethod::None, &FinishMethod::Stergiou, 3)
            })
            .0
        })
        .collect();

    let nd = datasets.len();
    let best: Vec<f64> =
        (0..nd).map(|i| rows.iter().map(|(_, v)| v[i]).fold(f64::INFINITY, f64::min)).collect();
    let slowdown = |per: &Vec<f64>| {
        let ratios: Vec<f64> = per.iter().zip(&best).map(|(t, b)| t / b).collect();
        geomean(&ratios)
    };

    let mut t = Table::new(vec!["Variant", "geomean slowdown"]);
    let mut scored: Vec<(String, f64)> =
        rows.iter().map(|(n, per)| (n.clone(), slowdown(per))).collect();
    scored.push(("Stergiou".into(), slowdown(&stergiou)));
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, s) in &scored {
        t.row(vec![name.clone(), fmt_ratio(*s)]);
    }
    t.print();
    println!("\nPaper shape to verify: FullShortcut variants (PF/EF/PRF/ERF-style) fastest;");
    println!("remaining variants ~1.3-1.5x; Stergiou slower than the best LT variant.");
}
