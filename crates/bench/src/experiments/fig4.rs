//! Figure 4 / Figure 16: streaming throughput as a function of batch size,
//! per algorithm, on the Friendster analog (and the other graphs at larger
//! bench scales).

use crate::datasets::{registry, update_stream};
use crate::experiments::table4::stream_algorithms;
use crate::harness::{fmt_rate, Table};
use connectit::{StreamingConnectivity, Update};

/// Regenerates the throughput-vs-batch-size series.
pub fn run(scale: u32) {
    let datasets: Vec<_> = registry(scale)
        .into_iter()
        .filter(|d| {
            if scale == 0 {
                d.name == "friendster_sim"
            } else {
                matches!(d.name, "road_sim" | "orkut_sim" | "lj_sim" | "friendster_sim")
            }
        })
        .collect();
    for d in datasets {
        let edges = update_stream(&d.graph, 1.0);
        let n = d.graph.num_vertices();
        println!(
            "\n== Figure 4/16: throughput vs batch size on {} (m = {}) ==\n",
            d.name,
            edges.len()
        );
        let mut batch_sizes = vec![1_000usize, 10_000, 100_000, 1_000_000];
        batch_sizes.retain(|&b| b <= edges.len());
        batch_sizes.push(edges.len());
        let mut t = Table::new(
            std::iter::once("Algorithm".to_string())
                .chain(batch_sizes.iter().map(|b| format!("bs={b}")))
                .collect::<Vec<_>>(),
        );
        for (name, alg) in stream_algorithms() {
            let mut cells = vec![name.to_string()];
            for &bs in &batch_sizes {
                let s = StreamingConnectivity::new(n, &alg, 1);
                let t0 = std::time::Instant::now();
                for chunk in edges.chunks(bs) {
                    let batch: Vec<Update> =
                        chunk.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
                    s.process_batch(&batch);
                }
                cells.push(fmt_rate(edges.len() as f64 / t0.elapsed().as_secs_f64()));
            }
            t.row(cells);
        }
        t.print();
    }
    println!("\nPaper shape to verify: throughput grows with batch size and saturates;");
    println!("union-find families exceed 100M/s from bs=1000 up; LT/SV sit well below.");
}
