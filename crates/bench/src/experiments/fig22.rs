//! Figures 22–24: k-out sampling study — running time, inter-component
//! edge fraction (log-scale in the paper), and giant coverage, for the four
//! selection variants at k = 1..5.

use crate::datasets::sweep_registry;
use crate::harness::{fmt_secs, reps, time_best_of, Table};
use connectit::sampling::{inter_component_edges, run_sampling};
use connectit::{KOutVariant, SamplingMethod};

/// Regenerates the k sweep.
pub fn run(scale: u32) {
    let r = reps();
    println!("== Figures 22-24: k-out sampling variants, k = 1..5 ==\n");
    for d in sweep_registry(scale) {
        let m = d.graph.num_directed_edges() as f64;
        let n = d.graph.num_vertices() as f64;
        println!("-- {} --", d.name);
        let mut t = Table::new(vec!["variant", "k", "time(s)", "inter-comp %", "coverage %"]);
        for variant in KOutVariant::ALL {
            for k in 1usize..=5 {
                let method = SamplingMethod::KOut { k, variant };
                let (secs, out) = time_best_of(r, || run_sampling(&d.graph, &method, 5, false));
                let ic = inter_component_edges(&d.graph, &out.labels) as f64;
                t.row(vec![
                    variant.name().to_string(),
                    k.to_string(),
                    fmt_secs(secs),
                    format!("{:.4}", 100.0 * ic / m),
                    format!("{:.2}", 100.0 * out.frequent_count as f64 / n),
                ]);
            }
        }
        t.print();
        println!();
    }
    println!("Paper shape to verify: kout-afforest collapses on the crawl-ordered web");
    println!("graphs (low coverage for every k) while kout-pure/hybrid recover by k=2;");
    println!("kout-maxdeg is the slowest (degree reduction per vertex); k=1 is poor for");
    println!("every randomized scheme; residues far below n/k.");
}
