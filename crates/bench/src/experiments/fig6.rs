//! Figures 6–10: path-length instrumentation. For every union-find variant
//! and dataset we report running time, Max Path Length, and Total Path
//! Length, plus a software cache-proxy metric standing in for the LLC-miss
//! counters of Figures 8–10 (see DESIGN.md's substitution table), and the
//! Pearson correlations the paper computes (TPL ~0.738 vs MPL ~0.344).

use crate::datasets::registry;
use crate::harness::{fmt_secs, pearson, Table};
use cc_unionfind::{UfSpec, UniteKind};
use connectit::{connectivity_timed, FinishMethod, SamplingMethod};

/// Regenerates the path-length analysis.
pub fn run(scale: u32) {
    let datasets = registry(scale);
    println!("== Figures 6-10: union-find path-length analysis (No Sampling) ==\n");
    let mut t = Table::new(vec!["Variant", "Graph", "Time(s)", "MPL", "TPL", "TPL/op"]);
    let mut times = Vec::new();
    let mut tpls = Vec::new();
    let mut mpls = Vec::new();
    for spec in UfSpec::all_variants() {
        // One representative per (unite, splice) column, FindNaive rows
        // carry the figure; keep all variants when scale > 0.
        if scale == 0 && spec.find != cc_unionfind::FindKind::Naive && spec.unite != UniteKind::Jtb
        {
            continue;
        }
        let finish = FinishMethod::UnionFind(spec);
        for d in &datasets {
            let (_, stats) = connectivity_timed(&d.graph, &SamplingMethod::None, &finish, 13);
            let ops = d.graph.num_directed_edges() as f64;
            t.row(vec![
                spec.name(),
                d.name.to_string(),
                fmt_secs(stats.finish_seconds),
                stats.max_path_length.to_string(),
                stats.total_path_length.to_string(),
                format!("{:.2}", stats.total_path_length as f64 / ops),
            ]);
            times.push(stats.finish_seconds);
            tpls.push(stats.total_path_length as f64);
            mpls.push(stats.max_path_length as f64);
        }
    }
    t.print();
    println!(
        "\nPearson correlation with running time: TPL = {:.3}, MPL = {:.3}",
        pearson(&tpls, &times),
        pearson(&mpls, &times)
    );
    println!("(paper: TPL 0.738, MPL 0.344 — TPL should correlate much more strongly)");

    // Cache proxy (Figures 8-10 stand-in): random-access volume = edges
    // processed x probability the parent read misses cache, approximated by
    // the parent-array footprint vs a 32 MiB LLC.
    println!("\n-- cache-proxy (Figures 8-10 substitution) --");
    let mut t2 = Table::new(vec!["Graph", "parent array MiB", "expected locality"]);
    for d in &datasets {
        let mib = (d.graph.num_vertices() * 4) as f64 / (1024.0 * 1024.0);
        let locality = if mib < 32.0 { "fits LLC (low miss rate)" } else { "exceeds LLC" };
        t2.row(vec![d.name.to_string(), format!("{mib:.1}"), locality.to_string()]);
    }
    t2.print();
}
