//! Table 1: the largest-graph comparison. The paper's rows are
//! whole-system results on Hyperlink2012/2014 (quoted below verbatim); our
//! measured rows run the same *algorithms* on the `hyperlink_sim` analog at
//! local scale, showing the same ordering: ConnectIt's sampled Union-Rem-CAS
//! beats BFS-based, LDD-contraction-based, and label-propagation systems.

use crate::datasets::registry;
use crate::harness::{fmt_secs, reps, time_best_of, Table};
use cc_baselines::{bfscc, work_efficient_cc};
use connectit::{connectivity_seeded, FinishMethod, SamplingMethod};

/// Regenerates Table 1 (measured analog + quoted paper numbers).
pub fn run(scale: u32) {
    let d = registry(scale)
        .into_iter()
        .find(|d| d.name == "hyperlink_sim")
        .expect("registry contains hyperlink_sim");
    let r = reps();
    println!(
        "== Table 1 (measured on {}: n = {}, m = {}) ==\n",
        d.name,
        d.graph.num_vertices(),
        d.graph.num_edges()
    );
    let mut t = Table::new(vec!["System (algorithm class)", "Time (s)"]);
    let rows: Vec<(&str, f64)> = vec![
        ("BFS-based (FlashGraph/Mosaic class)", time_best_of(r, || bfscc(&d.graph)).0),
        (
            "LDD-contraction (GBBS record holder)",
            time_best_of(r, || work_efficient_cc(&d.graph, 0.2, 5)).0,
        ),
        (
            "Label propagation (Stergiou/Gluon class)",
            time_best_of(r, || {
                connectivity_seeded(&d.graph, &SamplingMethod::None, &FinishMethod::Stergiou, 5)
            })
            .0,
        ),
        (
            "Shiloach-Vishkin (Zhang et al. class)",
            time_best_of(r, || {
                connectivity_seeded(
                    &d.graph,
                    &SamplingMethod::None,
                    &FinishMethod::ShiloachVishkin,
                    5,
                )
            })
            .0,
        ),
        (
            "ConnectIt (k-out + Union-Rem-CAS)",
            time_best_of(r, || {
                connectivity_seeded(
                    &d.graph,
                    &SamplingMethod::kout_default(),
                    &FinishMethod::fastest(),
                    5,
                )
            })
            .0,
        ),
    ];
    let best = rows.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    for (name, secs) in rows {
        let cell =
            if secs <= best * 1.0001 { format!("[{}]", fmt_secs(secs)) } else { fmt_secs(secs) };
        t.row(vec![name.to_string(), cell]);
    }
    t.print();

    println!("\n-- paper-reported whole-system numbers (quoted, Hyperlink graphs) --");
    let mut q = Table::new(vec!["System", "Graph", "Mem(TB)", "Threads", "Nodes", "Time(s)"]);
    for row in [
        ("Mosaic", "Hyperlink2014", "0.768", "1000", "1", "708"),
        ("FlashGraph", "Hyperlink2012", "0.512", "64", "1", "461"),
        ("GBBS", "Hyperlink2012", "1", "144", "1", "25.8"),
        ("GBBS (NVRAM)", "Hyperlink2012", "0.376", "96", "1", "36.2"),
        ("Galois (NVRAM)", "Hyperlink2012", "0.376", "96", "1", "76.0"),
        ("Slota et al.", "Hyperlink2012", "16.3", "8192", "256", "63"),
        ("Stergiou et al.", "Hyperlink2012", "128", "24000", "1000", "341"),
        ("Gluon", "Hyperlink2012", "24", "69632", "256", "75.3"),
        ("Zhang et al.", "Hyperlink2012", ">=256", "262000", "4096", "30"),
        ("ConnectIt (paper)", "Hyperlink2014", "1", "144", "1", "2.83"),
        ("ConnectIt (paper)", "Hyperlink2012", "1", "144", "1", "8.20"),
    ] {
        q.row(vec![row.0, row.1, row.2, row.3, row.4, row.5]);
    }
    q.print();
    println!("\nShape to verify: ConnectIt's sampled union-find is the fastest class on");
    println!("the web-graph analog, as it is on the real Hyperlink graphs in the paper.");
}
