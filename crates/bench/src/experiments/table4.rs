//! Table 4: maximum streaming throughput (edge updates/second) of each
//! streaming algorithm family on every input — one giant insert-only batch,
//! exactly the paper's setup (including the RMAT and Barabási–Albert
//! streams and the 10% subsample for the largest graphs).

use crate::datasets::{registry, update_stream};
use crate::harness::{fmt_rate, reps, time_best_of, Table};
use cc_graph::generators::{barabasi_albert, rmat_default};
use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};
use connectit::{LtScheme, StreamAlgorithm, StreamingConnectivity, Update};

/// The Table 4 algorithm rows.
pub fn stream_algorithms() -> Vec<(&'static str, StreamAlgorithm)> {
    vec![
        ("Union-Early", StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Early, FindKind::Naive))),
        ("Union-Hooks", StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Hooks, FindKind::Naive))),
        ("Union-Async", StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Async, FindKind::Naive))),
        ("Union-Rem-CAS", StreamAlgorithm::UnionFind(UfSpec::fastest())),
        (
            "Union-Rem-Lock",
            StreamAlgorithm::UnionFind(UfSpec::rem(
                UniteKind::RemLock,
                SpliceKind::SplitOne,
                FindKind::Naive,
            )),
        ),
        (
            "Union-JTB",
            StreamAlgorithm::UnionFind(UfSpec::new(UniteKind::Jtb, FindKind::TwoTrySplit)),
        ),
        ("Liu-Tarjan (CRFA)", StreamAlgorithm::LiuTarjan(LtScheme::crfa())),
        ("Shiloach-Vishkin", StreamAlgorithm::ShiloachVishkin),
    ]
}

/// One named edge stream: (name, vertex count, updates).
type Stream = (String, usize, Vec<(u32, u32)>);

/// Streams to measure: per-dataset edge streams + synthetic generators.
fn streams(scale: u32) -> Vec<Stream> {
    let mut out = Vec::new();
    for d in registry(scale) {
        // The paper subsamples 10% for its three largest graphs; our
        // analogs fit, so we stream everything except the web graphs.
        let frac = if d.name.ends_with("web_sim") { 0.1 } else { 1.0 };
        out.push((d.name.to_string(), d.graph.num_vertices(), update_stream(&d.graph, frac)));
    }
    let s = 16 + scale;
    let n = 1usize << s;
    out.push(("RMAT-stream".into(), n, rmat_default(s, n * 10, 0x77).edges));
    out.push(("BA-stream".into(), n, barabasi_albert(n, 10, 0x88).edges));
    out
}

/// Regenerates Table 4.
pub fn run(scale: u32) {
    let r = reps();
    println!("== Table 4: maximum streaming throughput (edge updates/second) ==\n");
    let streams = streams(scale);
    let mut t = Table::new(
        std::iter::once("Algorithm".to_string())
            .chain(streams.iter().map(|(n, _, _)| n.clone()))
            .collect::<Vec<_>>(),
    );
    let mut best = vec![0f64; streams.len()];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, alg) in stream_algorithms() {
        let rates: Vec<f64> = streams
            .iter()
            .map(|(_, n, edges)| {
                let batch: Vec<Update> = edges.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
                let (secs, _) = time_best_of(r, || {
                    let s = StreamingConnectivity::new(*n, &alg, 1);
                    s.process_batch(&batch);
                    s
                });
                edges.len() as f64 / secs
            })
            .collect();
        for (b, &x) in best.iter_mut().zip(&rates) {
            *b = b.max(x);
        }
        rows.push((name.to_string(), rates));
    }
    for (name, rates) in rows {
        t.row(
            std::iter::once(name)
                .chain(rates.iter().zip(&best).map(|(&x, &b)| {
                    if x >= b * 0.9999 {
                        format!("[{}]", fmt_rate(x))
                    } else {
                        fmt_rate(x)
                    }
                }))
                .collect::<Vec<_>>(),
        );
    }
    t.print();
    println!("\nPaper shape to verify: Union-Rem-CAS highest on every input;");
    println!("Liu-Tarjan and Shiloach-Vishkin roughly an order of magnitude lower.");
}
