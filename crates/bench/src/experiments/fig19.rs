//! Figures 19–21: LDD sampling parameter study — running time, fraction of
//! inter-cluster edges, and giant-cluster coverage as functions of beta,
//! with and without permuting the activation order.

use crate::datasets::sweep_registry;
use crate::harness::{fmt_secs, reps, time_best_of, Table};
use connectit::sampling::{inter_component_edges, run_sampling};
use connectit::SamplingMethod;

/// Regenerates the beta sweep.
pub fn run(scale: u32) {
    let r = reps();
    let betas = [0.05f64, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    println!("== Figures 19-21: LDD sampling beta sweep ==\n");
    for d in sweep_registry(scale) {
        let m = d.graph.num_directed_edges() as f64;
        let n = d.graph.num_vertices() as f64;
        println!("-- {} --", d.name);
        let mut t = Table::new(vec!["beta", "permute", "time(s)", "inter-cluster %", "coverage %"]);
        for &beta in &betas {
            for permute in [false, true] {
                let method = SamplingMethod::Ldd { beta, permute };
                let (secs, out) = time_best_of(r, || run_sampling(&d.graph, &method, 9, false));
                let ic = inter_component_edges(&d.graph, &out.labels) as f64;
                t.row(vec![
                    format!("{beta}"),
                    permute.to_string(),
                    fmt_secs(secs),
                    format!("{:.3}", 100.0 * ic / m),
                    format!("{:.2}", 100.0 * out.frequent_count as f64 / n),
                ]);
            }
        }
        t.print();
        println!();
    }
    println!("Paper shape to verify: inter-cluster fraction grows roughly linearly in");
    println!("beta (Fig 20); road-like coverage is tiny (<1%); web coverage high; time");
    println!("falls with beta on high-diameter graphs (fewer rounds), may rise on social");
    println!("graphs (more clusters).");
}
