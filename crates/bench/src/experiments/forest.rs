//! Section 4 spanning-forest claim: the trends match connectivity and the
//! average overhead of producing the forest is ~23.7%.

use crate::datasets::registry;
use crate::harness::{fmt_ratio, fmt_secs, geomean, reps, time_best_of, Table};
use cc_unionfind::{FindKind, UfSpec, UniteKind};
use connectit::{connectivity_seeded, spanning_forest, FinishMethod, SamplingMethod};

/// Regenerates the spanning-forest overhead comparison.
pub fn run(scale: u32) {
    let datasets = registry(scale);
    let r = reps();
    println!("== Spanning forest vs connectivity (Section 4 claim: ~23.7% overhead) ==\n");
    let finishes = [
        FinishMethod::fastest(),
        FinishMethod::UnionFind(UfSpec::new(UniteKind::Async, FindKind::Naive)),
        FinishMethod::UnionFind(UfSpec::new(UniteKind::Hooks, FindKind::Naive)),
        FinishMethod::ShiloachVishkin,
    ];
    let mut t = Table::new(vec!["Graph", "Finish", "CC(s)", "SF(s)", "overhead"]);
    let mut overheads = Vec::new();
    for d in &datasets {
        for finish in &finishes {
            let sampling = SamplingMethod::kout_default();
            let (cc_t, _) = time_best_of(r, || connectivity_seeded(&d.graph, &sampling, finish, 3));
            let (sf_t, forest) =
                time_best_of(r, || spanning_forest(&d.graph, &sampling, finish, 3));
            assert!(
                connectit::is_valid_spanning_forest(&d.graph, &forest),
                "invalid forest from {} on {}",
                finish.name(),
                d.name
            );
            overheads.push(sf_t / cc_t);
            t.row(vec![
                d.name.to_string(),
                finish.name(),
                fmt_secs(cc_t),
                fmt_secs(sf_t),
                fmt_ratio(sf_t / cc_t),
            ]);
        }
    }
    t.print();
    println!("\ngeomean SF/CC overhead: {}", fmt_ratio(geomean(&overheads)));
    println!("(paper: ~1.24x on average)");
}
