//! Ablation studies for the design choices DESIGN.md calls out, beyond the
//! paper's own figures:
//!
//! 1. edge-balanced vs vertex-balanced edge iteration under degree skew
//!    (why `CsrGraph::for_each_edge_par` partitions by edge count);
//! 2. the direction-optimizing dense phase in BFS (why BFS sampling is
//!    cheap on social networks);
//! 3. exact histogram-based `identify_frequent` vs a sampled estimate
//!    (why exact is affordable).

use crate::datasets::registry;
use crate::harness::{fmt_ratio, fmt_secs, reps, time_best_of, Table};
use cc_graph::{CsrGraph, VertexId, NO_VERTEX};
use connectit::sampling::identify_frequent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Vertex-balanced baseline: parallelize over vertices, each processing
/// its whole adjacency list (poor balance under skew).
fn for_each_edge_vertex_balanced<F: Fn(VertexId, VertexId) + Sync>(g: &CsrGraph, f: F) {
    cc_parallel::parallel_for(g.num_vertices(), |u| {
        let u = u as VertexId;
        for &v in g.neighbors(u) {
            f(u, v);
        }
    });
}

/// Runs all ablations.
pub fn run(scale: u32) {
    let datasets = registry(scale);
    let r = reps();

    println!("== Ablation 1: edge-balanced vs vertex-balanced edge iteration ==\n");
    let mut t = Table::new(vec!["Graph", "edge-balanced(s)", "vertex-balanced(s)", "speedup"]);
    for d in &datasets {
        let work = |edge_balanced: bool| {
            let acc = AtomicU64::new(0);
            if edge_balanced {
                d.graph.for_each_edge_par(|_, v| {
                    acc.fetch_add(u64::from(v & 1), Ordering::Relaxed);
                });
            } else {
                for_each_edge_vertex_balanced(&d.graph, |_, v| {
                    acc.fetch_add(u64::from(v & 1), Ordering::Relaxed);
                });
            }
            acc.load(Ordering::Relaxed)
        };
        let (eb, _) = time_best_of(r, || work(true));
        let (vb, _) = time_best_of(r, || work(false));
        t.row(vec![d.name.to_string(), fmt_secs(eb), fmt_secs(vb), fmt_ratio(vb / eb)]);
    }
    t.print();

    println!("\n== Ablation 2: direction-optimizing vs top-down-only BFS ==\n");
    let mut t = Table::new(vec!["Graph", "dir-opt(s)", "top-down(s)", "speedup"]);
    for d in &datasets {
        let (opt, _) = time_best_of(r, || cc_graph::bfs::bfs(&d.graph, 0).num_visited);
        let (plain, _) = time_best_of(r, || top_down_bfs(&d.graph, 0));
        t.row(vec![d.name.to_string(), fmt_secs(opt), fmt_secs(plain), fmt_ratio(plain / opt)]);
    }
    t.print();
    println!("(expected: large wins on low-diameter social/web graphs, parity on the grid;");
    println!(" the dense phase only pays once the graph outgrows the LLC — run with");
    println!(" CC_BENCH_SCALE=2 to see the 2.5-5x social-graph wins emerge)");

    println!("\n== Ablation 3: exact vs sampled identify_frequent ==\n");
    let mut t = Table::new(vec!["Graph", "exact(s)", "sampled(s)", "exact==sampled?"]);
    for d in &datasets {
        let labels = connectit::connectivity(
            &d.graph,
            &connectit::SamplingMethod::None,
            &connectit::FinishMethod::fastest(),
        );
        let (te, (exact, _)) = time_best_of(r, || identify_frequent(&labels));
        let (ts, sampled) = time_best_of(r, || sampled_frequent(&labels, 1000, 7));
        t.row(vec![d.name.to_string(), fmt_secs(te), fmt_secs(ts), (exact == sampled).to_string()]);
    }
    t.print();
    println!("(expected: both agree whenever a giant component exists; exact is cheap)");
}

/// Sparse-only BFS (no bottom-up phase), for ablation 2.
fn top_down_bfs(g: &CsrGraph, src: VertexId) -> usize {
    use std::sync::atomic::AtomicU32;
    let n = g.num_vertices();
    let parents: Vec<AtomicU32> = cc_parallel::parallel_tabulate(n, |_| AtomicU32::new(NO_VERTEX));
    parents[src as usize].store(src, Ordering::Relaxed);
    let mut frontier = vec![src];
    let mut visited = 1usize;
    while !frontier.is_empty() {
        let locals: parking_lot_free::Collector = parking_lot_free::Collector::default();
        cc_parallel::parallel_for_chunks(frontier.len(), |range| {
            let mut local = Vec::new();
            for i in range {
                for &v in g.neighbors(frontier[i]) {
                    if parents[v as usize].load(Ordering::Relaxed) == NO_VERTEX
                        && parents[v as usize]
                            .compare_exchange(
                                NO_VERTEX,
                                frontier[i],
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                    {
                        local.push(v);
                    }
                }
            }
            locals.push(local);
        });
        frontier = locals.concat();
        visited += frontier.len();
    }
    visited
}

/// Sampled majority estimate of the most frequent label.
fn sampled_frequent(labels: &[VertexId], samples: usize, seed: u64) -> VertexId {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts: std::collections::HashMap<VertexId, usize> = std::collections::HashMap::new();
    for _ in 0..samples {
        let v = rng.gen_range(0..labels.len());
        *counts.entry(labels[v]).or_insert(0) += 1;
    }
    counts.into_iter().max_by_key(|&(_, c)| c).map(|(l, _)| l).unwrap_or(NO_VERTEX)
}

mod parking_lot_free {
    //! A tiny mutex-collected vec-of-vecs.
    use parking_lot::Mutex;

    #[derive(Default)]
    pub struct Collector(Mutex<Vec<Vec<u32>>>);

    impl Collector {
        pub fn push(&self, v: Vec<u32>) {
            if !v.is_empty() {
                self.0.lock().push(v);
            }
        }
        pub fn concat(self) -> Vec<u32> {
            self.0.into_inner().concat()
        }
    }
}
