//! One module per reproduced table/figure.

pub mod ablations;
pub mod fig11;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig22;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod forest;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table8;
