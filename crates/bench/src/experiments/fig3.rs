//! Figures 3, 13, 14, 15: relative performance heatmaps of every
//! union-find variant (find option x unite/splice column), under no
//! sampling and under each sampling scheme. Cells are geometric-mean
//! slowdowns relative to the fastest variant, aggregated across datasets —
//! exactly the paper's presentation.

use crate::datasets::registry;
use crate::harness::{geomean, reps, time_best_of};
use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};
use connectit::{connectivity_seeded, FinishMethod, SamplingMethod};
use std::collections::HashMap;

/// Column order mirroring Figure 3.
fn columns() -> Vec<(String, UniteKind, Option<SpliceKind>)> {
    let mut cols = vec![("Union-JTB".to_string(), UniteKind::Jtb, None)];
    for (u, label) in [(UniteKind::RemCas, "Union-Rem-CAS"), (UniteKind::RemLock, "Union-Rem-Lock")]
    {
        for s in [SpliceKind::Splice, SpliceKind::SplitOne, SpliceKind::HalveOne] {
            cols.push((format!("{label};{}", short_splice(s)), u, Some(s)));
        }
    }
    cols.push(("Union-Early".to_string(), UniteKind::Early, None));
    cols.push(("Union-Hooks".to_string(), UniteKind::Hooks, None));
    cols.push(("Union-Async".to_string(), UniteKind::Async, None));
    cols
}

fn short_splice(s: SpliceKind) -> &'static str {
    match s {
        SpliceKind::Splice => "Splice",
        SpliceKind::SplitOne => "SplitOne",
        SpliceKind::HalveOne => "HalveOne",
    }
}

fn rows() -> Vec<(&'static str, FindKind)> {
    vec![
        ("TwoTry", FindKind::TwoTrySplit),
        ("FindCompress", FindKind::Compress),
        ("FindHalve", FindKind::Halve),
        ("FindSplit", FindKind::Split),
        ("FindNaive", FindKind::Naive),
    ]
}

/// Regenerates the four heatmaps.
pub fn run(scale: u32) {
    let datasets = registry(scale);
    let r = reps();
    let samplings = [
        ("Figure 3: No Sampling", SamplingMethod::None),
        ("Figure 13: k-out Sampling", SamplingMethod::kout_default()),
        ("Figure 14: BFS Sampling", SamplingMethod::bfs_default()),
        ("Figure 15: LDD Sampling", SamplingMethod::ldd_default()),
    ];
    for (title, sampling) in samplings {
        // Time every valid variant on every dataset.
        let mut times: HashMap<UfSpec, Vec<f64>> = HashMap::new();
        for spec in UfSpec::all_variants() {
            let finish = FinishMethod::UnionFind(spec);
            let per: Vec<f64> = datasets
                .iter()
                .map(|d| time_best_of(r, || connectivity_seeded(&d.graph, &sampling, &finish, 3)).0)
                .collect();
            times.insert(spec, per);
        }
        // Per-dataset normalization to the fastest variant, then geomean.
        let nd = datasets.len();
        let best: Vec<f64> =
            (0..nd).map(|i| times.values().map(|v| v[i]).fold(f64::INFINITY, f64::min)).collect();
        println!("\n== {title} ==");
        println!(
            "   (geomean slowdown vs fastest variant, across {nd} graphs; '-' = invalid combo)\n"
        );
        let cols = columns();
        // Header.
        print!("{:<14}", "");
        for (label, _, _) in &cols {
            print!(" {:>24}", label);
        }
        println!();
        for (row_label, find) in rows() {
            print!("{row_label:<14}");
            for &(_, unite, splice) in &cols {
                let spec = UfSpec { unite, find, splice };
                let cell = if spec.is_valid() {
                    let per = &times[&spec];
                    let ratios: Vec<f64> = per.iter().zip(&best).map(|(t, b)| t / b).collect();
                    format!("{:.2}", geomean(&ratios))
                } else {
                    "-".to_string()
                };
                print!(" {cell:>24}");
            }
            println!();
        }
    }
    println!("\nPaper shape to verify: Rem-CAS with SplitOne/HalveOne + FindNaive ~1.0 without sampling;");
    println!("Rem-Lock ~1.4-1.8x; JTB several x; with sampling (Figs 13-15) everything converges to ~1.0-1.3x.");
}
