//! Table 3: running times of every ConnectIt finish family under the four
//! sampling regimes, plus the "Other Systems" baselines.
//!
//! By default each family is represented by its paper-fastest variant; set
//! `CC_BENCH_FULL=1` to time every union-find variant and report the best
//! per family, exactly as the paper's "fastest out of all combinations of
//! options" methodology.

use crate::datasets::{registry, Dataset};
use crate::harness::{fmt_secs, reps, time_best_of, Table};
use cc_baselines::{bfscc, work_efficient_cc};
use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};
use connectit::{connectivity_seeded, FinishMethod, LtScheme, SamplingMethod};

/// One finish "family" (a Table 3 row).
pub struct Family {
    /// Row label.
    pub name: &'static str,
    /// Variants to time; the fastest is reported.
    pub variants: Vec<FinishMethod>,
}

/// The nine ConnectIt rows of Table 3.
pub fn families(full: bool) -> Vec<Family> {
    let uf_family = |kind: UniteKind, default: UfSpec| -> Vec<FinishMethod> {
        if full {
            UfSpec::all_variants()
                .into_iter()
                .filter(|s| s.unite == kind)
                .map(FinishMethod::UnionFind)
                .collect()
        } else {
            vec![FinishMethod::UnionFind(default)]
        }
    };
    let lt_family = || -> Vec<FinishMethod> {
        if full {
            LtScheme::all_schemes().into_iter().map(FinishMethod::LiuTarjan).collect()
        } else {
            // The paper's fastest static LT variants: one of {EF, PRF, PR, CRFA}.
            vec![
                FinishMethod::LiuTarjan(LtScheme::crfa()),
                FinishMethod::LiuTarjan(LtScheme::new(
                    connectit::LtConnect::ParentConnect,
                    true,
                    true,
                    false,
                )),
            ]
        }
    };
    vec![
        Family {
            name: "Union-Early",
            variants: uf_family(UniteKind::Early, UfSpec::new(UniteKind::Early, FindKind::Naive)),
        },
        Family {
            name: "Union-Hooks",
            variants: uf_family(UniteKind::Hooks, UfSpec::new(UniteKind::Hooks, FindKind::Naive)),
        },
        Family {
            name: "Union-Async",
            variants: uf_family(UniteKind::Async, UfSpec::new(UniteKind::Async, FindKind::Naive)),
        },
        Family { name: "Union-Rem-CAS", variants: uf_family(UniteKind::RemCas, UfSpec::fastest()) },
        Family {
            name: "Union-Rem-Lock",
            variants: uf_family(
                UniteKind::RemLock,
                UfSpec::rem(UniteKind::RemLock, SpliceKind::SplitOne, FindKind::Naive),
            ),
        },
        Family {
            name: "Union-JTB",
            variants: uf_family(UniteKind::Jtb, UfSpec::new(UniteKind::Jtb, FindKind::TwoTrySplit)),
        },
        Family { name: "Liu-Tarjan", variants: lt_family() },
        Family { name: "Shiloach-Vishkin", variants: vec![FinishMethod::ShiloachVishkin] },
        Family { name: "Label-Propagation", variants: vec![FinishMethod::LabelPropagation] },
    ]
}

/// The four sampling groups of Table 3.
pub fn sampling_groups() -> Vec<(&'static str, SamplingMethod)> {
    vec![
        ("No Sampling", SamplingMethod::None),
        ("k-out Sampling", SamplingMethod::kout_default()),
        ("BFS Sampling", SamplingMethod::bfs_default()),
        ("LDD Sampling", SamplingMethod::ldd_default()),
    ]
}

fn fastest_in_family(d: &Dataset, sampling: &SamplingMethod, family: &Family, r: usize) -> f64 {
    family
        .variants
        .iter()
        .map(|finish| time_best_of(r, || connectivity_seeded(&d.graph, sampling, finish, 99)).0)
        .fold(f64::INFINITY, f64::min)
}

/// Regenerates Table 3.
pub fn run(scale: u32) {
    let full = std::env::var("CC_BENCH_FULL").is_ok_and(|v| v == "1");
    let datasets = registry(scale);
    let r = reps();
    println!(
        "== Table 3: static connectivity running times (seconds) ==\n   ({} variants per family; CC_BENCH_FULL=1 for the full space)\n",
        if full { "all" } else { "representative" }
    );
    for (group, sampling) in sampling_groups() {
        println!("-- {group} --");
        let mut t = Table::new(
            std::iter::once("Algorithm".to_string())
                .chain(datasets.iter().map(|d| d.name.to_string()))
                .collect::<Vec<_>>(),
        );
        let fams = families(full);
        let mut best_per_dataset = vec![f64::INFINITY; datasets.len()];
        let mut cells: Vec<Vec<f64>> = Vec::new();
        for family in &fams {
            let row: Vec<f64> =
                datasets.iter().map(|d| fastest_in_family(d, &sampling, family, r)).collect();
            for (b, &x) in best_per_dataset.iter_mut().zip(&row) {
                *b = b.min(x);
            }
            cells.push(row);
        }
        for (family, row) in fams.iter().zip(&cells) {
            t.row(
                std::iter::once(family.name.to_string())
                    .chain(row.iter().zip(&best_per_dataset).map(|(&x, &b)| {
                        if x <= b * 1.0001 {
                            format!("[{}]", fmt_secs(x)) // group-fastest marker
                        } else {
                            fmt_secs(x)
                        }
                    }))
                    .collect::<Vec<_>>(),
            );
        }
        t.print();
        println!();
    }

    // Other systems (implemented in-repo; see DESIGN.md for the mapping).
    println!("-- Other Systems --");
    let mut t = Table::new(
        std::iter::once("System".to_string())
            .chain(datasets.iter().map(|d| d.name.to_string()))
            .collect::<Vec<_>>(),
    );
    type SystemRow<'a> = (&'a str, Box<dyn Fn(&Dataset) -> f64>);
    let others: Vec<SystemRow> = vec![
        ("BFSCC [Ligra]", Box::new(move |d: &Dataset| time_best_of(r, || bfscc(&d.graph)).0)),
        (
            "WorkefficientCC [Shun et al.]",
            Box::new(move |d: &Dataset| time_best_of(r, || work_efficient_cc(&d.graph, 0.2, 5)).0),
        ),
        (
            "MultiStep (BFS+LP) [Slota et al.]",
            Box::new(move |d: &Dataset| {
                time_best_of(r, || {
                    connectivity_seeded(
                        &d.graph,
                        &SamplingMethod::bfs_default(),
                        &FinishMethod::LabelPropagation,
                        5,
                    )
                })
                .0
            }),
        ),
        (
            "Galois (async LP) [Nguyen et al.]",
            Box::new(move |d: &Dataset| {
                time_best_of(r, || {
                    connectivity_seeded(
                        &d.graph,
                        &SamplingMethod::None,
                        &FinishMethod::LabelPropagation,
                        5,
                    )
                })
                .0
            }),
        ),
        (
            "PatwaryRM (Rem-Lock+Splice)",
            Box::new(move |d: &Dataset| {
                let spec = UfSpec::rem(UniteKind::RemLock, SpliceKind::Splice, FindKind::Naive);
                time_best_of(r, || {
                    connectivity_seeded(
                        &d.graph,
                        &SamplingMethod::None,
                        &FinishMethod::UnionFind(spec),
                        5,
                    )
                })
                .0
            }),
        ),
        (
            "GAPBS Shiloach-Vishkin (plain write)",
            Box::new(move |d: &Dataset| {
                let identity: Vec<u32> = (0..d.graph.num_vertices() as u32).collect();
                time_best_of(r, || {
                    connectit::shiloach_vishkin::shiloach_vishkin_plain_write(&d.graph, &identity)
                })
                .0
            }),
        ),
        (
            "GAPBS Afforest",
            Box::new(move |d: &Dataset| {
                let sampling =
                    SamplingMethod::KOut { k: 2, variant: connectit::KOutVariant::Afforest };
                time_best_of(r, || {
                    connectivity_seeded(
                        &d.graph,
                        &sampling,
                        &FinishMethod::UnionFind(UfSpec::new(UniteKind::Async, FindKind::Naive)),
                        5,
                    )
                })
                .0
            }),
        ),
    ];
    for (name, f) in &others {
        t.row(
            std::iter::once(name.to_string())
                .chain(datasets.iter().map(|d| fmt_secs(f(d))))
                .collect::<Vec<_>>(),
        );
    }
    t.print();
}
