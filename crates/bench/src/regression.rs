//! The bench-regression gate: compares freshly emitted `BENCH_*.json`
//! artifacts against committed baselines, metric by metric, and fails on
//! regressions instead of merely checking the files exist.
//!
//! ## What is gated
//!
//! Absolute timings are machine-bound, so they are *reported* but never
//! gated — CI runners and dev boxes disagree wildly. What IS gated is the
//! scale-free table in [`gate_for`]: dimensionless ratios (static-vs-dyn
//! `speedup`, WAL `slowdown_vs_memory`, replication `speedup_vs_single`)
//! and correctness counters (`mismatches`, `recovery_verified`,
//! `restart_converged`), each with a direction and a tolerance. The
//! default tolerance is 1.25x; correctness metrics override it to exact.
//! A metric present on only one side is informational (benches grow new
//! columns), and `null` metrics are skipped (test-mode runs refuse to
//! make timing claims).
//!
//! The workspace has no serde (no crates.io access), so this module
//! carries a minimal JSON reader sufficient for the artifacts the
//! harness itself writes.

use std::path::Path;

/// A parsed JSON value (the subset the bench artifacts use).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

/// Parses a JSON document (strict enough for hand-written artifacts;
/// errors carry the byte offset).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut at = 0usize;
    let v = parse_value(bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing bytes at offset {at}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, at);
    if *at < b.len() && b[*at] == c {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {at}", c as char, at = *at))
    }
}

fn parse_value(b: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(b, at);
    match b.get(*at) {
        None => Err("unexpected end of document".into()),
        Some(b'{') => {
            *at += 1;
            let mut fields = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, at);
                let key = parse_string(b, at)?;
                expect(b, at, b':')?;
                fields.push((key, parse_value(b, at)?));
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {at}", at = *at)),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(b, at);
            if b.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, at)?);
                skip_ws(b, at);
                match b.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {at}", at = *at)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, at)?)),
        Some(b't') if b[*at..].starts_with(b"true") => {
            *at += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*at..].starts_with(b"false") => {
            *at += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*at..].starts_with(b"null") => {
            *at += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *at;
            while *at < b.len() && matches!(b[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *at += 1;
            }
            std::str::from_utf8(&b[start..*at])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("malformed number at offset {start}"))
        }
    }
}

fn parse_string(b: &[u8], at: &mut usize) -> Result<String, String> {
    if b.get(*at) != Some(&b'"') {
        return Err(format!("expected string at offset {at}", at = *at));
    }
    *at += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*at) {
        *at += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*at).ok_or("unterminated escape")?;
                *at += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*at..*at + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", other as char)),
                }
            }
            other => out.push(other as char),
        }
    }
    Err("unterminated string".into())
}

/// Flattens a document into `(path, value)` metrics. Objects join with
/// `.`; an array element that is an object is keyed by its first
/// string-valued field (`policies.batch.ops_per_sec`) so baselines stay
/// comparable when rows reorder, falling back to the index. Booleans
/// flatten to 0/1; `null` and strings produce no metric.
pub fn flatten(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk(doc, String::new(), &mut out);
    out
}

fn walk(v: &Json, path: String, out: &mut Vec<(String, f64)>) {
    let join = |p: &str, k: &str| if p.is_empty() { k.to_string() } else { format!("{p}.{k}") };
    match v {
        Json::Null | Json::Str(_) => {}
        Json::Bool(b) => out.push((path, f64::from(u8::from(*b)))),
        Json::Num(x) => out.push((path, *x)),
        Json::Obj(fields) => {
            for (k, v) in fields {
                walk(v, join(&path, k), out);
            }
        }
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                let key = match item {
                    Json::Obj(fields) => fields
                        .iter()
                        .find_map(|(_, v)| match v {
                            Json::Str(s) => Some(sanitize(s)),
                            _ => None,
                        })
                        .unwrap_or_else(|| i.to_string()),
                    _ => i.to_string(),
                };
                walk(item, join(&path, &key), out);
            }
        }
    }
}

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Which way a gated metric is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (a drop below `baseline / tol` regresses).
    Higher,
    /// Smaller is better (a rise above `baseline * tol` regresses).
    Lower,
}

/// The gate table: metric *leaf* name → (direction, tolerance override).
/// `None` uses the run's default tolerance. Everything else numeric is
/// reported as informational.
pub fn gate_for(leaf: &str) -> Option<(Direction, Option<f64>)> {
    match leaf {
        // Scale-free timing ratios: gated at the default tolerance.
        // Per-variant `speedup` stays informational — single-variant
        // micro-timings flap run to run; the dispatch bench's headline
        // is the geomean across the whole variant table.
        "geomean_speedup" => Some((Direction::Higher, None)),
        "speedup_vs_single" => Some((Direction::Higher, None)),
        "slowdown_vs_memory" => Some((Direction::Lower, None)),
        // Correctness: exact, no tolerance at all.
        "mismatches" => Some((Direction::Lower, Some(1.0))),
        "recovery_verified" => Some((Direction::Higher, Some(1.0))),
        "restart_converged" => Some((Direction::Higher, Some(1.0))),
        "nonforest_rebuild_free" => Some((Direction::Higher, Some(1.0))),
        // Observability: the instrumentation-overhead bound is absolute
        // (the obs bench asserts <= 1.05x and reports the verdict as a
        // flag), so the flag gates exactly; the ratio itself is also
        // held near 1 at the default tolerance.
        "overhead_within_bound" => Some((Direction::Higher, Some(1.0))),
        "overhead_ratio" => Some((Direction::Lower, None)),
        // Networking: the pipelined-binary-vs-text speedup holds at the
        // default tolerance, and the two behavior flags (2x reached,
        // cross-connection coalescing observed) gate exactly. Test-mode
        // runs emit `speedup_vs_text: null` (skipped) and omit the 2x
        // flag (one-sided, informational) — timing claims are full-mode
        // only; the flags and `mismatches` still gate in CI.
        "speedup_vs_text" => Some((Direction::Higher, None)),
        "pipelined_2x_vs_text" => Some((Direction::Higher, Some(1.0))),
        "coalesce_width_gt1" => Some((Direction::Higher, Some(1.0))),
        // Analytics: the delta-maintained publish-path count must keep
        // beating the O(n) scan it replaced. Test-mode runs emit `null`
        // (skipped — no timing claims); `mismatches` gates exactly via
        // the correctness row above.
        "publish_speedup" => Some((Direction::Higher, None)),
        _ => None,
    }
}

/// One row of the comparison report.
#[derive(Debug)]
pub struct MetricRow {
    /// Flattened metric path.
    pub metric: String,
    /// Baseline value, if present.
    pub baseline: Option<f64>,
    /// Fresh value, if present.
    pub fresh: Option<f64>,
    /// What the gate decided.
    pub status: Status,
}

/// Verdict for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Gated and within tolerance.
    Ok,
    /// Gated and out of tolerance — fails the check.
    Regressed,
    /// Not gated (absolute timing, config echo, or one-sided).
    Info,
}

/// Compares two flattened metric sets under `default_tol`.
pub fn compare(
    baseline: &[(String, f64)],
    fresh: &[(String, f64)],
    default_tol: f64,
) -> Vec<MetricRow> {
    let lookup =
        |set: &[(String, f64)], name: &str| set.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
    let mut names: Vec<&String> = baseline.iter().map(|(k, _)| k).collect();
    for (k, _) in fresh {
        if !names.contains(&k) {
            names.push(k);
        }
    }
    names
        .into_iter()
        .map(|name| {
            let b = lookup(baseline, name);
            let f = lookup(fresh, name);
            let leaf = name.rsplit('.').next().unwrap_or(name);
            let status = match (gate_for(leaf), b, f) {
                (Some((dir, tol)), Some(b), Some(f)) => {
                    let tol = tol.unwrap_or(default_tol);
                    let ok = match dir {
                        Direction::Higher => f >= b / tol,
                        Direction::Lower => {
                            // A zero baseline leaves no headroom at any
                            // tolerance: 0 mismatches must stay 0.
                            f <= b * tol && !(b == 0.0 && f > 0.0)
                        }
                    };
                    if ok {
                        Status::Ok
                    } else {
                        Status::Regressed
                    }
                }
                _ => Status::Info,
            };
            MetricRow { metric: name.clone(), baseline: b, fresh: f, status }
        })
        .collect()
}

/// The result of checking one artifact pair.
pub struct CheckReport {
    /// Artifact name (e.g. `BENCH_wal.json`).
    pub name: String,
    /// Per-metric rows, document order.
    pub rows: Vec<MetricRow>,
}

impl CheckReport {
    /// Number of regressed metrics.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.status == Status::Regressed).count()
    }

    /// Renders the report as a markdown table.
    pub fn markdown(&self) -> String {
        let fmt = |v: Option<f64>| v.map_or_else(|| "—".to_string(), |x| format!("{x:.4}"));
        let mut out = format!(
            "### {}\n\n| metric | baseline | fresh | ratio | status |\n|---|---:|---:|---:|---|\n",
            self.name
        );
        for r in &self.rows {
            let ratio = match (r.baseline, r.fresh) {
                (Some(b), Some(f)) if b != 0.0 => format!("{:.3}", f / b),
                _ => "—".to_string(),
            };
            let status = match r.status {
                Status::Ok => "ok",
                Status::Regressed => "**REGRESSED**",
                Status::Info => "info",
            };
            out.push_str(&format!(
                "| {} | {} | {} | {ratio} | {status} |\n",
                r.metric,
                fmt(r.baseline),
                fmt(r.fresh)
            ));
        }
        out
    }
}

/// Loads and compares one artifact from the baseline and fresh
/// directories.
pub fn check_artifact(
    name: &str,
    baseline_dir: &Path,
    fresh_dir: &Path,
    default_tol: f64,
) -> Result<CheckReport, String> {
    let load = |dir: &Path| -> Result<Vec<(String, f64)>, String> {
        let path = dir.join(name);
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(flatten(&parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?))
    };
    let baseline = load(baseline_dir)?;
    let fresh = load(fresh_dir)?;
    Ok(CheckReport { name: name.to_string(), rows: compare(&baseline, &fresh, default_tol) })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
      "bench": "wal",
      "test_mode": true,
      "n": 4000,
      "policies": [
        {"policy": "memory", "ops_per_sec": 100.0, "slowdown_vs_memory": 1.0},
        {"policy": "batch", "ops_per_sec": 80.0, "slowdown_vs_memory": 1.25,
         "recovery_verified": true}
      ],
      "note": null
    }"#;

    #[test]
    fn parse_and_flatten_key_arrays_by_first_string_field() {
        let doc = parse_json(DOC).expect("parses");
        let flat = flatten(&doc);
        let get = |k: &str| flat.iter().find(|(n, _)| n == k).map(|&(_, v)| v);
        assert_eq!(get("n"), Some(4000.0));
        assert_eq!(get("test_mode"), Some(1.0));
        assert_eq!(get("policies.batch.ops_per_sec"), Some(80.0));
        assert_eq!(get("policies.batch.recovery_verified"), Some(1.0));
        assert_eq!(get("policies.memory.slowdown_vs_memory"), Some(1.0));
        // Strings and nulls yield no metric.
        assert_eq!(get("bench"), None);
        assert_eq!(get("note"), None);
    }

    #[test]
    fn parse_rejects_garbage_with_offset() {
        assert!(parse_json("{\"a\": }").unwrap_err().contains("offset"));
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").unwrap_err().contains("trailing"));
    }

    fn metrics(pairs: &[(&str, f64)]) -> Vec<(String, f64)> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn gate_directions_and_default_tolerance() {
        let baseline = metrics(&[
            ("geomean_speedup", 1.2),
            ("p.slowdown_vs_memory", 1.5),
            ("ops_per_sec", 1000.0),
            ("v.speedup", 2.0),
        ]);
        // Within tolerance both ways; absolute throughput and noisy
        // per-variant speedups never gate.
        let fresh = metrics(&[
            ("geomean_speedup", 1.0),
            ("p.slowdown_vs_memory", 1.8),
            ("ops_per_sec", 10.0),
            ("v.speedup", 0.5),
        ]);
        let rows = compare(&baseline, &fresh, 1.25);
        let by = |n: &str| rows.iter().find(|r| r.metric == n).expect("row").status;
        assert_eq!(by("geomean_speedup"), Status::Ok);
        assert_eq!(by("p.slowdown_vs_memory"), Status::Ok);
        assert_eq!(by("ops_per_sec"), Status::Info);
        assert_eq!(by("v.speedup"), Status::Info);
        // Out of tolerance: a speedup collapse and a slowdown blowup.
        let bad = metrics(&[("geomean_speedup", 0.9), ("p.slowdown_vs_memory", 2.0)]);
        let rows = compare(&baseline, &bad, 1.25);
        let by = |n: &str| rows.iter().find(|r| r.metric == n).map(|r| r.status);
        assert_eq!(by("geomean_speedup"), Some(Status::Regressed));
        assert_eq!(by("p.slowdown_vs_memory"), Some(Status::Regressed));
    }

    #[test]
    fn correctness_metrics_are_exact_even_at_zero() {
        let baseline = metrics(&[("t.mismatches", 0.0), ("t.restart_converged", 1.0)]);
        let clean = compare(
            &baseline,
            &metrics(&[("t.mismatches", 0.0), ("t.restart_converged", 1.0)]),
            1.25,
        );
        assert!(clean.iter().all(|r| r.status == Status::Ok));
        // One mismatch appearing is a regression despite the 0 baseline
        // (0 * tol leaves no headroom), and a convergence flag dropping
        // to false regresses exactly.
        let dirty = compare(
            &baseline,
            &metrics(&[("t.mismatches", 1.0), ("t.restart_converged", 0.0)]),
            1.25,
        );
        assert!(dirty.iter().all(|r| r.status == Status::Regressed), "{dirty:?}");
    }

    #[test]
    fn one_sided_metrics_are_informational() {
        let rows =
            compare(&metrics(&[("old.speedup", 1.0)]), &metrics(&[("new.speedup", 1.0)]), 1.25);
        assert!(rows.iter().all(|r| r.status == Status::Info));
    }

    #[test]
    fn markdown_report_renders_and_counts() {
        let report = CheckReport {
            name: "BENCH_x.json".into(),
            rows: compare(
                &metrics(&[("geomean_speedup", 2.0), ("b", 1.0)]),
                &metrics(&[("geomean_speedup", 1.0), ("b", 2.0)]),
                1.25,
            ),
        };
        assert_eq!(report.regressions(), 1);
        let md = report.markdown();
        assert!(md.contains("| geomean_speedup |"), "{md}");
        assert!(md.contains("**REGRESSED**"), "{md}");
        assert!(md.contains("| ratio |"), "{md}");
    }
}
