//! Durability tax, measured: insert throughput of the connectivity
//! service with the write-ahead log at each fsync policy (`off`, `batch`,
//! `always`) against the in-memory baseline, multi-client closed loop.
//! After every durable run the service is re-opened from its WAL
//! directory and the recovered partition is checked against the
//! sequential oracle — a bench run that loses data fails loudly instead
//! of reporting a throughput.
//!
//! Prints a table and emits `BENCH_wal.json`
//! (`{policy, ops_per_sec, slowdown_vs_memory, recovery_verified}` per
//! row). Accepts the criterion-style `--test` flag (tiny sizes, no timing
//! claims) so `cargo bench -- --test` smoke-runs it in CI.

use cc_bench::harness::{write_bench_json, Table};
use cc_graph::stats::same_partition;
use cc_parallel::SplitMix64;
use cc_server::{DurabilityConfig, FsyncPolicy, Service, ServiceConfig};
use cc_unionfind::SeqUnionFind;
use connectit::Update;
use std::path::PathBuf;
use std::time::Instant;

/// One measured configuration: `None` is the in-memory baseline.
#[derive(Clone, Copy)]
struct Policy {
    name: &'static str,
    fsync: Option<FsyncPolicy>,
}

const POLICIES: [Policy; 4] = [
    Policy { name: "memory", fsync: None },
    Policy { name: "off", fsync: Some(FsyncPolicy::Off) },
    Policy { name: "batch", fsync: Some(FsyncPolicy::Batch) },
    Policy { name: "always", fsync: Some(FsyncPolicy::Always) },
];

fn tmp_dir(tag: &str) -> PathBuf {
    cc_server::scratch_dir(&format!("bench_wal_{tag}"))
}

struct RunResult {
    ops_per_sec: f64,
    /// All inserted edges, for the oracle check.
    edges: Vec<(u32, u32)>,
}

/// Drives `clients` insert-only closed loops against a fresh service and
/// returns the aggregate throughput (ops/s over the load phase only —
/// recovery and teardown are not billed).
fn drive(
    n: usize,
    clients: usize,
    batches: usize,
    batch_ops: usize,
    durability: Option<DurabilityConfig>,
) -> RunResult {
    let mut svc =
        Service::start(ServiceConfig { n, shards: 4, durability, ..ServiceConfig::default() })
            .expect("service starts");
    let t0 = Instant::now();
    let per_thread: Vec<Vec<(u32, u32)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| {
                let client = svc.client();
                s.spawn(move || {
                    let mut rng = SplitMix64::new(0xbe4c_0000 + idx as u64);
                    let mut edges = Vec::with_capacity(batches * batch_ops);
                    for _ in 0..batches {
                        let batch: Vec<Update> = (0..batch_ops)
                            .map(|_| {
                                let u = (rng.next_u64() % n as u64) as u32;
                                let v = (rng.next_u64() % n as u64) as u32;
                                edges.push((u, v));
                                Update::Insert(u, v)
                            })
                            .collect();
                        client.submit(batch).expect("submit");
                    }
                    edges
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    svc.shutdown();
    let total_ops = (clients * batches * batch_ops) as f64;
    RunResult {
        ops_per_sec: total_ops / elapsed.max(1e-9),
        edges: per_thread.into_iter().flatten().collect(),
    }
}

/// Re-opens the service from the WAL directory and checks the recovered
/// partition against the sequential oracle over every inserted edge.
fn verify_recovery(n: usize, dir: &std::path::Path, edges: &[(u32, u32)]) -> bool {
    let mut svc = Service::start(ServiceConfig {
        n,
        shards: 4,
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Off,
            ..DurabilityConfig::new(dir)
        }),
        ..ServiceConfig::default()
    })
    .expect("recovery succeeds");
    let recovered = svc.client().snapshot_now();
    svc.shutdown();
    let mut oracle = SeqUnionFind::new(n);
    for &(u, v) in edges {
        oracle.union(u, v);
    }
    same_partition(&oracle.labels(), &recovered.labels)
}

fn main() {
    let mut test_mode = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => test_mode = true,
            s if s.starts_with('-') => {}
            s => filter = Some(s.to_string()),
        }
    }
    let (n, clients, batches, batch_ops) =
        if test_mode { (4_000, 2, 12, 500) } else { (1 << 20, 4, 64, 8192) };

    println!("== wal: insert throughput per fsync policy vs in-memory baseline ==");
    println!("n={n} clients={clients} batches={batches}x{batch_ops} ops each\n");

    let mut t = Table::new(vec!["Policy", "ops/s", "vs memory", "recovery"]);
    let mut rows = Vec::new();
    let mut memory_ops = None;
    for p in POLICIES {
        if let Some(f) = &filter {
            if !p.name.contains(f.as_str()) {
                continue;
            }
        }
        let dir = tmp_dir(p.name);
        let durability =
            p.fsync.map(|fsync| DurabilityConfig { fsync, ..DurabilityConfig::new(&dir) });
        let run = drive(n, clients, batches, batch_ops, durability);
        let verified = match p.fsync {
            Some(_) => verify_recovery(n, &dir, &run.edges),
            None => true, // nothing on disk to verify
        };
        assert!(verified, "{}: recovered partition diverges from the oracle", p.name);
        if p.fsync.is_none() {
            memory_ops = Some(run.ops_per_sec);
        }
        // No ratio without the baseline in the run (e.g. a name filter
        // skipped it) — `null` in the JSON, never a fabricated 1.00x.
        let slowdown = memory_ops.map(|m| m / run.ops_per_sec);
        t.row(vec![
            p.name.to_string(),
            format!("{:.3e}", run.ops_per_sec),
            slowdown.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
            if p.fsync.is_some() { "verified".into() } else { "n/a".to_string() },
        ]);
        rows.push(format!(
            "    {{\"policy\": \"{}\", \"ops_per_sec\": {:.1}, \"slowdown_vs_memory\": \
             {}, \"recovery_verified\": {}}}",
            p.name,
            run.ops_per_sec,
            slowdown.map_or_else(|| "null".to_string(), |s| format!("{s:.4}")),
            verified
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    if test_mode {
        println!(
            "wal: test ok ({} policies recovered and verified against the oracle)",
            rows.len()
        );
    } else {
        t.print();
    }

    let json = format!(
        "{{\n  \"bench\": \"wal\",\n  \"test_mode\": {test_mode},\n  \"n\": {n},\n  \
         \"clients\": {clients},\n  \"batches\": {batches},\n  \"batch_ops\": {batch_ops},\n  \
         \"policies\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    match write_bench_json("BENCH_wal.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("wal: could not write BENCH_wal.json: {e}"),
    }
}
