//! Read scaling, measured: verified query throughput of a single-node
//! service (the seed loadgen closed loop, queries riding the batch
//! former) against a 1-primary + 2-follower replication topology under
//! the same mixed insert/query load, with inserts routed to the primary
//! (fsync policy `batch`) and queries routed to the followers behind a
//! `wait_for_epoch` read-your-writes barrier. Every follower answer is
//! validated *exactly* against the per-client oracle — the barrier
//! leaves exactly one legal answer — and the bench fails loudly on any
//! mismatch. A follower is then torn down and replaced by a fresh empty
//! one, which must reconverge to the primary's epoch through the
//! replication stream alone.
//!
//! Prints a table and emits `BENCH_replication.json` (single vs
//! replicated query throughput, `speedup_vs_single`, mismatch counts,
//! `restart_converged`). Accepts the criterion-style `--test` flag (tiny
//! sizes, no timing claims: `speedup_vs_single` is `null` there) so
//! `cargo bench -- --test` smoke-runs it in CI.

use cc_bench::harness::{write_bench_json, Table};
use cc_parallel::SplitMix64;
use cc_server::{
    run_follower, serve_replication, DurabilityConfig, FsyncPolicy, Role, Service, ServiceConfig,
};
use cc_unionfind::SeqUnionFind;
use connectit::Update;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(tag: &str) -> PathBuf {
    cc_server::scratch_dir(&format!("bench_repl_{tag}"))
}

#[derive(Clone, Copy)]
struct Shape {
    n: usize,
    clients: usize,
    batches: usize,
    batch_ops: usize,
    /// Query fraction of the single-node baseline (the seed loadgen
    /// shape).
    single_frac: f64,
    /// Query fraction of the replicated mixed load. Read-heavier than
    /// the baseline on purpose: read replicas exist to serve read-heavy
    /// traffic, and every insert is applied once per replica, so the
    /// topology's win is read-path leverage, not write amplification.
    replicated_frac: f64,
}

#[derive(Default)]
struct LoadResult {
    queries: u64,
    mismatches: u64,
    elapsed_secs: f64,
}

impl LoadResult {
    fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.elapsed_secs.max(1e-9)
    }
}

fn primary_config(n: usize, dir: &Path) -> ServiceConfig {
    ServiceConfig {
        n,
        shards: 4,
        durability: Some(DurabilityConfig {
            fsync: FsyncPolicy::Batch,
            ..DurabilityConfig::new(dir)
        }),
        ..ServiceConfig::default()
    }
}

fn follower_service(n: usize) -> Service {
    Service::start(ServiceConfig { n, shards: 4, role: Role::Follower, ..ServiceConfig::default() })
        .expect("follower starts")
}

/// One client's closed loop. `read_side` is where queries go: the
/// primary itself (single-node shape, bracket validation — a query whose
/// component forms within its own batch may legally answer either way)
/// or a follower behind the `wait_for_epoch` barrier (exact validation).
fn client_loop(
    shape: Shape,
    idx: usize,
    primary: &cc_server::Client,
    follower: Option<&cc_server::Client>,
    result: &mut LoadResult,
) {
    let sz = shape.n / shape.clients;
    let base = (idx * sz) as u32;
    let mut oracle = SeqUnionFind::new(sz);
    let mut rng = SplitMix64::new(0x5ca1e + idx as u64);
    let frac = if follower.is_some() { shape.replicated_frac } else { shape.single_frac };
    let query_cut = (frac * (1u64 << 32) as f64) as u64;
    for _ in 0..shape.batches {
        let mut script = Vec::with_capacity(shape.batch_ops);
        let mut inserts = Vec::new();
        let mut queries = Vec::new();
        let mut before = Vec::new();
        for _ in 0..shape.batch_ops {
            let r = rng.next_u64();
            let lu = ((r >> 32) % sz as u64) as u32;
            let lv = ((rng.next_u64() >> 32) % sz as u64) as u32;
            let is_query = (r & 0xffff_ffff) < query_cut;
            script.push((is_query, lu, lv));
            if is_query {
                before.push(oracle.connected(lu, lv));
                queries.push(Update::Query(base + lu, base + lv));
            } else {
                inserts.push(Update::Insert(base + lu, base + lv));
            }
        }
        let answers = match follower {
            None => {
                // Single node: the whole mixed batch rides the batcher.
                let mut wire = Vec::with_capacity(shape.batch_ops);
                for &(is_query, lu, lv) in &script {
                    wire.push(if is_query {
                        Update::Query(base + lu, base + lv)
                    } else {
                        Update::Insert(base + lu, base + lv)
                    });
                }
                primary.submit(wire).expect("submit")
            }
            Some(f) => {
                // Split route: inserts to the primary, queries to the
                // follower once it provably holds them.
                if !inserts.is_empty() {
                    primary.submit(inserts.clone()).expect("insert batch");
                }
                f.wait_for_epoch(primary.epoch(), Duration::from_secs(60))
                    .expect("follower catches up");
                f.submit(queries.clone()).expect("follower queries")
            }
        };
        for &(is_query, lu, lv) in &script {
            if !is_query {
                oracle.union(lu, lv);
            }
        }
        let mut qi = 0usize;
        for &(is_query, lu, lv) in &script {
            if !is_query {
                continue;
            }
            let got = answers[qi];
            let was = before[qi];
            qi += 1;
            result.queries += 1;
            let now = oracle.connected(lu, lv);
            let bad = match follower {
                // Bracketing: only batch-stable answers are forced.
                None => was == now && got != was,
                // Behind WAIT, the post-batch state is the only answer.
                Some(_) => got != now,
            };
            if bad {
                result.mismatches += 1;
            }
        }
        assert_eq!(qi, answers.len());
    }
}

fn drive(shape: Shape, primary: &Service, followers: &[&Service]) -> LoadResult {
    let t0 = Instant::now();
    let per_client: Vec<LoadResult> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..shape.clients)
            .map(|idx| {
                let p = primary.client();
                let f = (!followers.is_empty()).then(|| followers[idx % followers.len()].client());
                s.spawn(move || {
                    let mut r = LoadResult::default();
                    client_loop(shape, idx, &p, f.as_ref(), &mut r);
                    r
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut total = LoadResult { elapsed_secs: elapsed, ..LoadResult::default() };
    for r in per_client {
        total.queries += r.queries;
        total.mismatches += r.mismatches;
    }
    total
}

fn main() {
    let mut test_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            test_mode = true;
        }
    }
    // Full-mode batches are large on purpose: a split-routed client pays
    // the replication lag (sender poll + follower apply) once per WAIT
    // round, so the queries behind each barrier must be numerous enough
    // to amortize it — exactly how a read-scaled deployment would batch.
    let shape = if test_mode {
        Shape {
            n: 20_000,
            clients: 2,
            batches: 10,
            batch_ops: 600,
            single_frac: 0.5,
            replicated_frac: 0.5,
        }
    } else {
        Shape {
            n: 1 << 20,
            clients: 8,
            batches: 12,
            batch_ops: 32768,
            single_frac: 0.5,
            replicated_frac: 0.9,
        }
    };
    const FOLLOWERS: usize = 2;

    println!("== replication: single-node vs 1 primary + {FOLLOWERS} followers (fsync=batch) ==");
    println!(
        "n={} clients={} batches={}x{} ops query_frac single={} replicated={}\n",
        shape.n,
        shape.clients,
        shape.batches,
        shape.batch_ops,
        shape.single_frac,
        shape.replicated_frac
    );

    // Phase A: the seed single-node closed loop (queries ride batches).
    let dir_a = tmp_dir("single");
    let mut single_svc = Service::start(primary_config(shape.n, &dir_a)).expect("service");
    let single = drive(shape, &single_svc, &[]);
    single_svc.shutdown();
    assert_eq!(single.mismatches, 0, "single-node run must validate cleanly");
    let _ = std::fs::remove_dir_all(&dir_a);

    // Phase B: the replication topology. The stream crosses real TCP.
    let dir_b = tmp_dir("topology");
    let mut primary = Service::start(primary_config(shape.n, &dir_b)).expect("primary");
    let mut hub = serve_replication(&dir_b, "127.0.0.1:0").expect("hub");
    let addr = hub.local_addr().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut follower_svcs = Vec::new();
    let mut receivers = Vec::new();
    for _ in 0..FOLLOWERS {
        let f = follower_service(shape.n);
        let (h, _) =
            run_follower(f.client(), addr.clone(), Arc::clone(&shutdown)).expect("receiver starts");
        follower_svcs.push(f);
        receivers.push(h);
    }
    let replicated = drive(shape, &primary, &follower_svcs.iter().collect::<Vec<_>>());
    assert_eq!(
        replicated.mismatches, 0,
        "replicated run must validate cleanly behind the WAIT barrier"
    );

    // Restart drill: replace follower 0 with a fresh empty one; it must
    // reconverge to the primary's epoch through the stream alone.
    let mut old = follower_svcs.remove(0);
    old.shutdown();
    let fresh = follower_service(shape.n);
    let (h, _) =
        run_follower(fresh.client(), addr, Arc::clone(&shutdown)).expect("receiver starts");
    receivers.push(h);
    let target = primary.client().epoch();
    let restart_converged = fresh
        .client()
        .wait_for_epoch(target, Duration::from_secs(60))
        .map(|reached| reached >= target)
        .unwrap_or(false);
    assert!(restart_converged, "a fresh follower must reconverge to epoch {target}");

    shutdown.store(true, std::sync::atomic::Ordering::Release);
    for h in receivers {
        let _ = h.join();
    }
    hub.stop();
    for mut f in follower_svcs {
        f.shutdown();
    }
    drop(fresh);
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&dir_b);

    let speedup = replicated.queries_per_sec() / single.queries_per_sec().max(1e-9);
    let mut t = Table::new(vec!["Topology", "verified q/s", "queries", "mismatches"]);
    t.row(vec![
        "single".to_string(),
        format!("{:.3e}", single.queries_per_sec()),
        single.queries.to_string(),
        single.mismatches.to_string(),
    ]);
    t.row(vec![
        format!("primary+{FOLLOWERS}f"),
        format!("{:.3e}", replicated.queries_per_sec()),
        replicated.queries.to_string(),
        replicated.mismatches.to_string(),
    ]);
    if test_mode {
        println!(
            "replication: test ok ({} single + {} follower queries verified, \
             restart converged to epoch {target})",
            single.queries, replicated.queries
        );
    } else {
        t.print();
        println!("\nspeedup vs single: {speedup:.2}x (acceptance floor: 2.00x)");
        assert!(
            speedup >= 2.0,
            "2-follower topology must sustain >= 2x single-node verified query \
             throughput, got {speedup:.2}x"
        );
    }

    // No timing claims in test mode: the ratio is null there, and the
    // bench-regression gate skips null metrics.
    let speedup_json = if test_mode { "null".to_string() } else { format!("{speedup:.4}") };
    let json = format!(
        "{{\n  \"bench\": \"replication\",\n  \"test_mode\": {test_mode},\n  \"n\": {},\n  \
         \"clients\": {},\n  \"batches\": {},\n  \"batch_ops\": {},\n  \"single_frac\": {},\n  \
         \"replicated_frac\": {},\n  \
         \"followers\": {FOLLOWERS},\n  \"topologies\": [\n    {{\"topology\": \"single\", \
         \"queries_per_sec\": {:.1}, \"verified_queries\": {}, \"mismatches\": {}}},\n    \
         {{\"topology\": \"replicated\", \"queries_per_sec\": {:.1}, \"verified_queries\": {}, \
         \"mismatches\": {}, \"restart_converged\": {restart_converged}}}\n  ],\n  \
         \"speedup_vs_single\": {speedup_json}\n}}\n",
        shape.n,
        shape.clients,
        shape.batches,
        shape.batch_ops,
        shape.single_frac,
        shape.replicated_frac,
        single.queries_per_sec(),
        single.queries,
        single.mismatches,
        replicated.queries_per_sec(),
        replicated.queries,
        replicated.mismatches,
    );
    match write_bench_json("BENCH_replication.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("replication: could not write BENCH_replication.json: {e}"),
    }
}
