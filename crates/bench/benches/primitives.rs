//! Criterion micro-version of Table 8 plus substrate primitives: MapEdges,
//! GatherEdges, prefix sums, pack, compressed-CSR decode.

use cc_graph::build_undirected;
use cc_graph::compressed::CompressedCsr;
use cc_graph::generators::rmat_default;
use cc_graph::primitives::{gather_edges, map_edges};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

fn bench_primitives(c: &mut Criterion) {
    let el = rmat_default(14, 200_000, 1);
    let g = build_undirected(el.num_vertices, &el.edges);
    let data: Vec<u32> = (0..g.num_vertices() as u32).collect();
    let compressed = CompressedCsr::from_csr(&g);
    let mut group = c.benchmark_group("table8_primitives");
    group.sample_size(20);
    group.bench_function("map_edges", |b| b.iter(|| black_box(map_edges(&g))));
    group.bench_function("gather_edges", |b| b.iter(|| black_box(gather_edges(&g, &data))));
    group.bench_function("compressed_edge_map", |b| {
        b.iter(|| {
            let count = AtomicUsize::new(0);
            compressed.for_each_edge_par(|_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            black_box(count.load(Ordering::Relaxed))
        })
    });
    group.bench_function("scan_exclusive_1m", |b| {
        let base: Vec<usize> = (0..1_000_000).map(|i| i % 7).collect();
        b.iter(|| {
            let mut v = base.clone();
            black_box(cc_parallel::scan_exclusive(&mut v))
        })
    });
    group.bench_function("pack_indices_1m", |b| {
        b.iter(|| black_box(cc_parallel::pack_indices(1_000_000, |i| i % 3 == 0)))
    });
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
