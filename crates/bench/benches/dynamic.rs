//! Fully dynamic connectivity, measured: mixed insert/delete churn
//! throughput of the generation-engine service, plus the latency of a
//! forest-deletion rebuild (the only deletion class that costs anything
//! — the bench also re-asserts, via telemetry, that a non-forest
//! deletion triggers **zero** rebuilds).
//!
//! Every churn run is validated exactly: each client keeps a
//! `DynamicOracle` over its private vertex slice and answers are only
//! scored inside a clean generation window (quiesce + generation
//! sandwich, as in `connectit-loadgen --churn`); a mismatch fails the
//! bench loudly instead of reporting a throughput.
//!
//! Prints a table and emits `BENCH_dynamic.json` (`churn_ops_per_sec`,
//! `rebuild_ms` stats, and the gated correctness counters `mismatches`
//! and `nonforest_rebuild_free`). Accepts the criterion-style `--test`
//! flag (tiny sizes; absolute timings are informational there and never
//! gated) so `cargo bench -- --test` smoke-runs it in CI.

use cc_baselines::DynamicOracle;
use cc_bench::harness::{write_bench_json, Table};
use cc_parallel::SplitMix64;
use cc_server::{Service, ServiceConfig};
use connectit::Update;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const CHURN: f64 = 0.25;
const QUIESCE: Duration = Duration::from_secs(20);

struct DriveResult {
    ops: u64,
    deletes: u64,
    verified_queries: u64,
    stale_skipped: u64,
    mismatches: u64,
    elapsed: f64,
}

/// One churn client: mutation batches over a private slice, validated
/// exactly against a dynamic oracle inside clean generation windows.
#[allow(clippy::too_many_arguments)]
fn churn_client(
    client: &cc_server::Client,
    idx: usize,
    sz: usize,
    batches: usize,
    batch_ops: usize,
    queries_per_batch: usize,
) -> (u64, u64, u64, u64, u64) {
    let base = (idx * sz) as u32;
    let mut rng = SplitMix64::new(0xd19a_0000 + idx as u64);
    let mut oracle = DynamicOracle::new(sz);
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut live_at: HashMap<(u32, u32), usize> = HashMap::new();
    let delete_cut = (CHURN * (1u64 << 32) as f64) as u64;
    let (mut ops, mut deletes, mut verified, mut stale, mut mismatches) = (0u64, 0, 0, 0, 0);
    for _ in 0..batches {
        let mut wire: Vec<Update> = Vec::with_capacity(batch_ops);
        for _ in 0..batch_ops {
            let r = rng.next_u64();
            if (r & 0xffff_ffff) < delete_cut {
                let (lu, lv) = if !live.is_empty() && (r >> 32) & 3 != 0 {
                    live[(rng.next_u64() % live.len() as u64) as usize]
                } else {
                    (
                        ((rng.next_u64() >> 32) as usize % sz) as u32,
                        ((rng.next_u64() >> 32) as usize % sz) as u32,
                    )
                };
                if oracle.delete(lu, lv) {
                    let key = (lu.min(lv), lu.max(lv));
                    if let Some(i) = live_at.remove(&key) {
                        let last = live.pop().expect("pool and index agree");
                        if i < live.len() {
                            live[i] = last;
                            live_at.insert(last, i);
                        }
                    }
                }
                wire.push(Update::Delete(base + lu, base + lv));
                deletes += 1;
            } else {
                let lu = ((r >> 32) as usize % sz) as u32;
                let lv = ((rng.next_u64() >> 32) as usize % sz) as u32;
                if oracle.insert(lu, lv) {
                    let key = (lu.min(lv), lu.max(lv));
                    live_at.insert(key, live.len());
                    live.push(key);
                }
                wire.push(Update::Insert(base + lu, base + lv));
            }
        }
        client.submit(wire).expect("submit");
        ops += batch_ops as u64;
        // Exact validation inside a clean generation window.
        let mut queries: Vec<Update> = Vec::with_capacity(queries_per_batch);
        let mut expected: Vec<bool> = Vec::with_capacity(queries_per_batch);
        for _ in 0..queries_per_batch {
            let lu = ((rng.next_u64() >> 32) as usize % sz) as u32;
            let lv = ((rng.next_u64() >> 32) as usize % sz) as u32;
            queries.push(Update::Query(base + lu, base + lv));
            expected.push(oracle.connected(lu, lv));
        }
        ops += queries_per_batch as u64;
        let mut validated = None;
        for _ in 0..5 {
            let _ = client.quiesce(QUIESCE);
            let g1 = client.generation_info();
            if g1.dirty {
                continue;
            }
            let answers = client.submit(queries.clone()).expect("query batch");
            let g2 = client.generation_info();
            if !g2.dirty && g2.generation == g1.generation {
                validated = Some(answers);
                break;
            }
        }
        match validated {
            Some(answers) => {
                for (&got, &want) in answers.iter().zip(&expected) {
                    verified += 1;
                    mismatches += u64::from(got != want);
                }
            }
            None => stale += queries_per_batch as u64,
        }
    }
    (ops, deletes, verified, stale, mismatches)
}

/// Drives `clients` churn loops against a fresh service.
fn drive(
    n: usize,
    clients: usize,
    batches: usize,
    batch_ops: usize,
    queries_per_batch: usize,
) -> DriveResult {
    let mut svc = Service::start(ServiceConfig { n, shards: 4, ..ServiceConfig::default() })
        .expect("service starts");
    let sz = n / clients;
    let t0 = Instant::now();
    let per_client: Vec<(u64, u64, u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| {
                let client = svc.client();
                s.spawn(move || {
                    churn_client(&client, idx, sz, batches, batch_ops, queries_per_batch)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    svc.shutdown();
    let mut r = DriveResult {
        ops: 0,
        deletes: 0,
        verified_queries: 0,
        stale_skipped: 0,
        mismatches: 0,
        elapsed,
    };
    for (ops, deletes, verified, stale, mismatches) in per_client {
        r.ops += ops;
        r.deletes += deletes;
        r.verified_queries += verified;
        r.stale_skipped += stale;
        r.mismatches += mismatches;
    }
    r
}

/// Times forest-deletion rebuilds over a pre-built random graph: each
/// cycle inserts a fresh forest edge between two reserved (isolated)
/// vertices, then measures delete → quiesce, which brackets the whole
/// seal + rebuild + commit path. Also verifies, via telemetry, that a
/// non-forest deletion rebuilds nothing. Returns (`rebuild_ms` samples,
/// total rebuilds, nonforest_rebuild_free).
fn rebuild_latency(n: usize, edges: usize, cycles: usize) -> (Vec<f64>, u64, bool) {
    let mut svc = Service::start(ServiceConfig { n, shards: 4, ..ServiceConfig::default() })
        .expect("service starts");
    let client = svc.client();
    // Random graph over the first half of the vertex space; the tail
    // stays isolated for the probe edges.
    let mut rng = SplitMix64::new(0x4eb1_11d5);
    let half = (n / 2) as u64;
    let batch: Vec<Update> = (0..edges)
        .map(|_| Update::Insert((rng.next_u64() % half) as u32, (rng.next_u64() % half) as u32))
        .collect();
    client.submit(batch).expect("seed graph");
    client.quiesce(QUIESCE).expect("quiesce");

    // Non-forest classification probe: close a cycle over reserved
    // vertices, then retract the closing edge — zero rebuilds allowed.
    let (a, b, c) = ((n - 2) as u32, (n - 3) as u32, (n - 4) as u32);
    client.submit(vec![Update::Insert(a, b), Update::Insert(b, c)]).expect("path");
    client.quiesce(QUIESCE).expect("quiesce");
    client.submit(vec![Update::Insert(a, c)]).expect("cycle");
    client.quiesce(QUIESCE).expect("quiesce");
    let before = client.generation_info();
    client.delete(a, c).expect("non-forest delete");
    let after = client.generation_info();
    let nonforest_free = !after.dirty
        && after.counters.rebuilds == before.counters.rebuilds
        && after.counters.deletes_nonforest == before.counters.deletes_nonforest + 1;

    let mut samples = Vec::with_capacity(cycles);
    for i in 0..cycles {
        let u = (n - 6 - 2 * i) as u32;
        let v = (n - 5 - 2 * i) as u32;
        client.submit(vec![Update::Insert(u, v)]).expect("probe edge");
        client.quiesce(QUIESCE).expect("quiesce");
        let t0 = Instant::now();
        client.delete(u, v).expect("forest delete");
        client.quiesce(QUIESCE).expect("rebuild drains");
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let rebuilds = client.generation_info().counters.rebuilds;
    svc.shutdown();
    (samples, rebuilds, nonforest_free)
}

fn main() {
    let mut test_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            test_mode = true;
        }
    }
    let (n, clients, batches, batch_ops, queries_per_batch, seed_edges, cycles) = if test_mode {
        (4_000, 2, 10, 400, 24, 2_000, 3)
    } else {
        (1 << 18, 4, 32, 4096, 64, 1 << 17, 8)
    };

    println!("== dynamic: churn throughput + rebuild latency (generation engine) ==");
    println!(
        "n={n} clients={clients} batches={batches}x{batch_ops} ops (churn={CHURN}), \
         {queries_per_batch} exact queries/batch\n"
    );

    let run = drive(n, clients, batches, batch_ops, queries_per_batch);
    assert_eq!(
        run.mismatches, 0,
        "churn run diverged from the dynamic oracle in a clean generation window"
    );
    assert!(run.verified_queries > 0, "no churn query was ever validated");
    let churn_ops_per_sec = run.ops as f64 / run.elapsed.max(1e-9);

    let (mut samples, rebuilds, nonforest_free) = rebuild_latency(n, seed_edges, cycles);
    assert!(nonforest_free, "a non-forest deletion triggered a rebuild (or missed its counter)");
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let p50 = samples[samples.len() / 2];
    let max = *samples.last().expect("samples");

    let mut t = Table::new(vec!["Metric", "Value"]);
    t.row(vec!["churn ops/s".to_string(), format!("{churn_ops_per_sec:.3e}")]);
    t.row(vec!["deletes".to_string(), run.deletes.to_string()]);
    t.row(vec!["verified queries".to_string(), run.verified_queries.to_string()]);
    t.row(vec!["stale skipped".to_string(), run.stale_skipped.to_string()]);
    t.row(vec!["mismatches".to_string(), run.mismatches.to_string()]);
    t.row(vec!["rebuild ms (mean/p50/max)".to_string(), format!("{mean:.2}/{p50:.2}/{max:.2}")]);
    t.row(vec!["rebuilds".to_string(), rebuilds.to_string()]);
    if test_mode {
        println!(
            "dynamic: test ok ({} queries exactly validated, {} deletions, 0 mismatches)",
            run.verified_queries, run.deletes
        );
    } else {
        t.print();
    }

    let json = format!(
        "{{\n  \"bench\": \"dynamic\",\n  \"test_mode\": {test_mode},\n  \"n\": {n},\n  \
         \"clients\": {clients},\n  \"batches\": {batches},\n  \"batch_ops\": {batch_ops},\n  \
         \"churn\": {CHURN},\n  \"churn_ops_per_sec\": {churn_ops_per_sec:.1},\n  \
         \"deletes\": {},\n  \"verified_queries\": {},\n  \"stale_skipped\": {},\n  \
         \"mismatches\": {},\n  \"nonforest_rebuild_free\": {nonforest_free},\n  \
         \"rebuilds\": {rebuilds},\n  \"rebuild_ms\": {{\"mean\": {mean:.3}, \"p50\": \
         {p50:.3}, \"max\": {max:.3}}}\n}}\n",
        run.deletes, run.verified_queries, run.stale_skipped, run.mismatches
    );
    match write_bench_json("BENCH_dynamic.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("dynamic: could not write BENCH_dynamic.json: {e}"),
    }
}
