//! Wire-speed comparison of the server's two protocol doors: the text
//! line protocol (strictly request/reply), the binary protocol driven
//! synchronously (one frame in flight), and the binary protocol
//! pipelined (a window of correlated frames in flight per connection).
//! All three run the same oracle-verified mixed workload — alternating
//! windows of inserts and queries on disjoint per-connection vertex
//! slices, so every query has an exact expected answer — at high
//! connection counts against a real served socket.
//!
//! Reported per mode: verified ops/s and per-request p50/p999 latency
//! (send-to-reap, measured per correlation id so pipelining reports
//! true request latency, not window/width). The headline
//! `speedup_vs_text` is binary-pipelined throughput over text
//! throughput and must reach 2x in full mode (`pipelined_2x_vs_text`,
//! gated exactly by `connectit-bench check`); the event loop's
//! cross-connection batching is proven by `coalesce_width_gt1`, read
//! from the service's own `net_coalesce_width` histogram after the
//! pipelined run.
//!
//! Prints a table and emits `BENCH_net.json`. Accepts the
//! criterion-style `--test` flag (tiny sizes, timing fields null — no
//! timing claims) so `cargo bench -- --test` smoke-runs it in CI.

use cc_bench::harness::{write_bench_json, Table};
use cc_parallel::hist::LatencyHist;
use cc_parallel::SplitMix64;
use cc_server::{serve, BinClient, Reply, Service, ServiceConfig, TcpClient};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Minimal union-find oracle over one connection's vertex slice.
struct Dsu {
    parent: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu { parent: (0..n as u32).collect() }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let g = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = g;
            x = g;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }

    fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Text,
    Bin,
    BinPipe,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Text => "text",
            Mode::Bin => "binary",
            Mode::BinPipe => "binary_pipelined",
        }
    }
}

struct ModeResult {
    ops_per_sec: f64,
    p50_us: f64,
    p999_us: f64,
    mismatches: u64,
    total_ops: u64,
}

/// The per-connection workload: `rounds` alternating windows of
/// `window` inserts then `window` queries on the connection's own
/// vertex slice. Pair generation is deterministic per (mode, conn) so
/// all three modes do identical work.
fn pairs(rng: &mut SplitMix64, sv: usize, window: usize) -> Vec<(u32, u32)> {
    (0..window)
        .map(|_| ((rng.next_u64() % sv as u64) as u32, (rng.next_u64() % sv as u64) as u32))
        .collect()
}

/// One connection's share of the workload: its vertex slice and the
/// deterministic schedule over it.
#[derive(Clone, Copy)]
struct Slice {
    base: u32,
    sv: usize,
    rounds: usize,
    window: usize,
    seed: u64,
}

fn drive_text(addr: SocketAddr, w: Slice, hist: &LatencyHist) -> u64 {
    let Slice { base, sv, rounds, window, seed } = w;
    let mut c = TcpClient::connect(addr).expect("text connect");
    let mut rng = SplitMix64::new(seed);
    let mut dsu = Dsu::new(sv);
    let mut mismatches = 0u64;
    for _ in 0..rounds {
        for (u, v) in pairs(&mut rng, sv, window) {
            let t0 = Instant::now();
            c.insert(base + u, base + v).expect("insert");
            hist.record(t0.elapsed().as_nanos() as u64);
            dsu.union(u, v);
        }
        for (u, v) in pairs(&mut rng, sv, window) {
            let expect = dsu.connected(u, v);
            let t0 = Instant::now();
            let got = c.query(base + u, base + v).expect("query");
            hist.record(t0.elapsed().as_nanos() as u64);
            mismatches += u64::from(got != expect);
        }
    }
    mismatches
}

fn drive_bin(addr: SocketAddr, w: Slice, hist: &LatencyHist, pipeline: bool) -> u64 {
    let Slice { base, sv, rounds, window, seed } = w;
    let mut c = BinClient::connect(addr).expect("binary connect");
    let mut rng = SplitMix64::new(seed);
    let mut dsu = Dsu::new(sv);
    let mut mismatches = 0u64;
    for _ in 0..rounds {
        let ins = pairs(&mut rng, sv, window);
        if pipeline {
            // Whole insert window in flight at once; replies complete
            // out of order, keyed by correlation id.
            let mut sent: HashMap<u64, Instant> = HashMap::with_capacity(window);
            for &(u, v) in &ins {
                let corr = c.send_insert(base + u, base + v).expect("send insert");
                sent.insert(corr, Instant::now());
            }
            c.flush().expect("flush");
            for _ in 0..ins.len() {
                let (corr, reply) = c.reap().expect("reap insert");
                hist.record(sent.remove(&corr).expect("known corr").elapsed().as_nanos() as u64);
                assert!(matches!(reply, Reply::Ok), "insert reply");
            }
        } else {
            for &(u, v) in &ins {
                let t0 = Instant::now();
                c.insert(base + u, base + v).expect("insert");
                hist.record(t0.elapsed().as_nanos() as u64);
            }
        }
        for (u, v) in &ins {
            dsu.union(*u, *v);
        }
        // Queries only reference state acked in this or earlier rounds,
        // so the expected answers are exact even with a full window in
        // flight.
        let qs = pairs(&mut rng, sv, window);
        if pipeline {
            let mut sent: HashMap<u64, (Instant, bool)> = HashMap::with_capacity(window);
            for &(u, v) in &qs {
                let expect = dsu.connected(u, v);
                let corr = c.send_query(base + u, base + v).expect("send query");
                sent.insert(corr, (Instant::now(), expect));
            }
            c.flush().expect("flush");
            for _ in 0..qs.len() {
                let (corr, reply) = c.reap().expect("reap query");
                let (t0, expect) = sent.remove(&corr).expect("known corr");
                hist.record(t0.elapsed().as_nanos() as u64);
                match reply {
                    Reply::Bit(got) => mismatches += u64::from(got != expect),
                    other => panic!("query reply: {other:?}"),
                }
            }
        } else {
            for &(u, v) in &qs {
                let expect = dsu.connected(u, v);
                let t0 = Instant::now();
                let got = c.query(base + u, base + v).expect("query");
                hist.record(t0.elapsed().as_nanos() as u64);
                mismatches += u64::from(got != expect);
            }
        }
    }
    mismatches
}

/// Runs one mode against a fresh service + server at `conns`
/// connections and returns throughput, latency quantiles, and the
/// oracle verdict. Returns the service's coalesce-width histogram
/// verdict (mean width > 1) alongside so the pipelined run can prove
/// cross-connection batching actually happened.
fn run_mode(
    mode: Mode,
    n: usize,
    conns: usize,
    rounds: usize,
    window: usize,
) -> (ModeResult, bool) {
    let mut svc = Service::start(ServiceConfig { n, shards: 4, ..ServiceConfig::default() })
        .expect("service starts");
    let mut server = serve(&svc, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let sv = n / conns;
    let hist = LatencyHist::new();
    let mismatches = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for id in 0..conns {
            let (hist, mismatches) = (&hist, &mismatches);
            s.spawn(move || {
                let w = Slice {
                    base: (id * sv) as u32,
                    sv,
                    rounds,
                    window,
                    seed: 0x00e7_2026 ^ ((mode.name().len() as u64) << 32) ^ id as u64,
                };
                let bad = match mode {
                    Mode::Text => drive_text(addr, w, hist),
                    Mode::Bin => drive_bin(addr, w, hist, false),
                    Mode::BinPipe => drive_bin(addr, w, hist, true),
                };
                mismatches.fetch_add(bad, Ordering::Relaxed);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let obs: Arc<cc_server::obs::Obs> = svc.client().observability();
    let width = &obs.metrics.net_coalesce_width;
    let coalesced = width.count() > 0 && width.mean() > 1;
    server.stop();
    svc.shutdown();
    let total_ops = (conns * rounds * 2 * window) as u64;
    (
        ModeResult {
            ops_per_sec: total_ops as f64 / elapsed.max(1e-9),
            p50_us: hist.quantile(0.5) as f64 / 1e3,
            p999_us: hist.quantile(0.999) as f64 / 1e3,
            mismatches: mismatches.load(Ordering::Relaxed),
            total_ops,
        },
        coalesced,
    )
}

fn main() {
    let mut test_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            test_mode = true;
        }
    }
    let (n, conns, rounds, window) =
        if test_mode { (1 << 14, 16, 2, 32) } else { (1 << 20, 256, 8, 128) };

    println!("== net: text vs binary vs binary-pipelined over a served socket ==");
    println!("n={n} conns={conns} rounds={rounds} window={window} (half inserts, half queries)\n");

    let modes = [Mode::Text, Mode::Bin, Mode::BinPipe];
    let mut results = Vec::new();
    let mut coalesce_width_gt1 = false;
    for mode in modes {
        let (r, coalesced) = run_mode(mode, n, conns, rounds, window);
        if mode == Mode::BinPipe {
            coalesce_width_gt1 = coalesced;
        }
        println!(
            "{:<18} {:>10.3e} ops/s  p50 {:>8.1}us  p999 {:>8.1}us  mismatches={}",
            mode.name(),
            r.ops_per_sec,
            r.p50_us,
            r.p999_us,
            r.mismatches
        );
        results.push((mode, r));
    }

    let text_ops = results[0].1.ops_per_sec;
    let pipe_ops = results[2].1.ops_per_sec;
    let speedup = pipe_ops / text_ops.max(1e-9);
    let total_mismatches: u64 = results.iter().map(|(_, r)| r.mismatches).sum();

    let mut t = Table::new(vec!["mode", "ops/s", "p50 us", "p999 us", "mismatches"]);
    for (mode, r) in &results {
        t.row(vec![
            mode.name().to_string(),
            format!("{:.3e}", r.ops_per_sec),
            format!("{:.1}", r.p50_us),
            format!("{:.1}", r.p999_us),
            r.mismatches.to_string(),
        ]);
    }
    if test_mode {
        println!(
            "\nnet: test ok (speedup {speedup:.2}x, coalesced: {coalesce_width_gt1}, \
             mismatches: {total_mismatches})"
        );
    } else {
        println!();
        t.print();
        println!("\nbinary-pipelined vs text: {speedup:.2}x");
    }

    assert_eq!(total_mismatches, 0, "oracle mismatches over the wire");
    assert!(coalesce_width_gt1, "pipelined run never coalesced more than one request");
    let pipelined_2x = speedup >= 2.0;
    if !test_mode {
        assert!(
            pipelined_2x,
            "binary-pipelined is only {speedup:.2}x text at {conns} connections (need >= 2x)"
        );
    }

    // Timing-derived fields are null in test mode: smoke sizes make no
    // timing claims, and the regression gate skips nulls.
    let num = |x: f64| {
        if test_mode {
            "null".to_string()
        } else {
            format!("{x:.1}")
        }
    };
    let mut mode_rows = String::new();
    for (i, (mode, r)) in results.iter().enumerate() {
        mode_rows.push_str(&format!(
            "    {{\"mode\": \"{}\", \"ops_per_sec\": {}, \"p50_us\": {}, \
             \"p999_us\": {}, \"total_ops\": {}, \"mismatches\": {}}}{}\n",
            mode.name(),
            num(r.ops_per_sec),
            num(r.p50_us),
            num(r.p999_us),
            r.total_ops,
            r.mismatches,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    let speedup_json = if test_mode { "null".to_string() } else { format!("{speedup:.3}") };
    let flag_json = if test_mode {
        String::new()
    } else {
        format!("  \"pipelined_2x_vs_text\": {pipelined_2x},\n")
    };
    let json = format!(
        "{{\n  \"bench\": \"net\",\n  \"test_mode\": {test_mode},\n  \"n\": {n},\n  \
         \"conns\": {conns},\n  \"rounds\": {rounds},\n  \"window\": {window},\n  \
         \"modes\": [\n{mode_rows}  ],\n  \
         \"speedup_vs_text\": {speedup_json},\n{flag_json}  \
         \"coalesce_width_gt1\": {coalesce_width_gt1},\n  \
         \"mismatches\": {total_mismatches}\n}}\n"
    );
    match write_bench_json("BENCH_net.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("net: could not write BENCH_net.json: {e}"),
    }
}
