//! Service-layer benchmark: mixed insert/query throughput of the sharded
//! engine (shard-count sweep, wait-free vs phased) and of the full
//! service stack including the batch former and reply fan-out.

use cc_parallel::SplitMix64;
use cc_server::{build_engine, Client, ExecMode, Service, ServiceConfig};
use cc_unionfind::UfSpec;
use connectit::Update;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn mixed_batch(n: usize, ops: usize, seed: u64) -> Vec<Update> {
    let mut rng = SplitMix64::new(seed);
    (0..ops)
        .map(|_| {
            let u = (rng.next_u64() % n as u64) as u32;
            let v = (rng.next_u64() % n as u64) as u32;
            if rng.next_u64().is_multiple_of(2) {
                Update::Insert(u, v)
            } else {
                Update::Query(u, v)
            }
        })
        .collect()
}

fn bench_engine(c: &mut Criterion) {
    let n = 1usize << 16;
    let ops = 1usize << 14;
    let mut group = c.benchmark_group("service_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops as u64));
    for shards in [1usize, 4, 8] {
        group.bench_function(format!("waitfree/shards_{shards}"), |b| {
            b.iter(|| {
                let e =
                    build_engine(n, shards, &UfSpec::fastest(), ExecMode::Auto, 1).expect("engine");
                for (i, chunk) in mixed_batch(n, ops, 9).chunks(4096).enumerate() {
                    black_box(e.process_batch(black_box(chunk)));
                    black_box(i);
                }
                black_box(e)
            })
        });
    }
    group.bench_function("phased/shards_4", |b| {
        b.iter(|| {
            let e = build_engine(n, 4, &UfSpec::fastest(), ExecMode::Phased, 1).expect("engine");
            for chunk in mixed_batch(n, ops, 9).chunks(4096) {
                black_box(e.process_batch(black_box(chunk)));
            }
            black_box(e)
        })
    });
    group.finish();
}

fn bench_full_service(c: &mut Criterion) {
    let n = 1usize << 16;
    let ops = 1usize << 14;
    let mut group = c.benchmark_group("service_full_stack");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops as u64));
    group.bench_function("submit_4096_chunks", |b| {
        let svc = Service::start(ServiceConfig {
            n,
            shards: 4,
            batch_max_wait: Duration::from_micros(20),
            ..ServiceConfig::default()
        })
        .expect("service");
        let client: Client = svc.client();
        b.iter(|| {
            for chunk in mixed_batch(n, ops, 23).chunks(4096) {
                black_box(client.submit(chunk.to_vec()).expect("submit"));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_full_service);
criterion_main!(benches);
