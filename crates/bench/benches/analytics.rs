//! The analytics plane, measured: delta maintenance must beat the O(n)
//! scan it replaced, and analytical reads must be cheap *and exact*
//! while the write path is busy. Three measurements:
//!
//! 1. Publish-path component count: the old `count_distinct_labels`
//!    full label scan vs the delta-maintained count behind
//!    `COMPONENTS`/`TOPK`/`HIST` (`publish_speedup`, gated at the
//!    default tolerance by `connectit-bench check`).
//! 2. Analytical-read throughput (`TOPK`/`HIST`/`SIZE` round-robin)
//!    against a concurrent insert/delete writer, with every read
//!    checked for internal consistency (histogram sums to the
//!    component count, top-k sizes non-increasing multi-vertex).
//! 3. A final quiesced exactness pass: every aggregate recomputed from
//!    a full label snapshot and compared — `mismatches` must be 0
//!    (gated exactly).
//!
//! Prints a table and emits `BENCH_analytics.json`. Accepts the
//! criterion-style `--test` flag (tiny sizes, `publish_speedup` and
//! `reads_per_sec` reported as `null` — no timing claims) so
//! `cargo bench -- --test` smoke-runs it in CI.

use cc_bench::harness::{write_bench_json, Table};
use cc_parallel::SplitMix64;
use cc_server::{Client, Service, ServiceConfig, HIST_BUCKETS, TOPK_CAP};
use connectit::Update;
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const QUIESCE: Duration = Duration::from_secs(60);

/// Random insert batch over `n` vertices; one delete per batch retracts
/// an edge inserted in this batch so generation rebuilds happen too.
fn churn_batch(rng: &mut SplitMix64, n: usize, ops: usize) -> Vec<Update> {
    let mut batch: Vec<Update> = (0..ops)
        .map(|_| {
            let u = (rng.next_u64() % n as u64) as u32;
            let v = (rng.next_u64() % n as u64) as u32;
            Update::Insert(u, v)
        })
        .collect();
    if let Some(&Update::Insert(u, v)) = batch.first() {
        batch.push(Update::Delete(u, v));
    }
    batch
}

/// Recomputes `(components, hist, topk_sizes, size_by_label)` from a
/// label snapshot — the ground truth the delta aggregates must equal.
#[allow(clippy::type_complexity)]
fn recompute(labels: &[u32]) -> (u64, Vec<u64>, Vec<u64>, HashMap<u32, u64>) {
    let mut size_by_label: HashMap<u32, u64> = HashMap::new();
    for &l in labels {
        *size_by_label.entry(l).or_insert(0) += 1;
    }
    let mut hist = vec![0u64; HIST_BUCKETS];
    for &s in size_by_label.values() {
        hist[(63 - s.leading_zeros()) as usize] += 1;
    }
    let mut topk: Vec<u64> = size_by_label.values().copied().filter(|&s| s >= 2).collect();
    topk.sort_unstable_by(|a, b| b.cmp(a));
    topk.truncate(TOPK_CAP);
    (size_by_label.len() as u64, hist, topk, size_by_label)
}

/// Round-robin analytical reads while a writer churns; every read is
/// consistency-checked. Returns `(reads, elapsed_secs, mismatches)`.
fn drive_reads(client: &Client, n: usize, reads: u64) -> (u64, f64, u64) {
    let mut mismatches = 0u64;
    let t0 = Instant::now();
    for i in 0..reads {
        match i % 3 {
            0 => {
                let (entries, _epoch, _gen, _sealed) = client.topk(8);
                if !entries.windows(2).all(|w| w[0].1 >= w[1].1)
                    || entries.iter().any(|&(_, s)| s < 2)
                {
                    mismatches += 1;
                }
            }
            1 => {
                let view = client.analytics();
                if view.hist.iter().sum::<u64>() != view.components {
                    mismatches += 1;
                }
            }
            _ => {
                let v = (i as usize * 2654435761) % n;
                match client.component_size(v as u32) {
                    Ok((_root, size)) if size >= 1 => {}
                    _ => mismatches += 1,
                }
            }
        }
        black_box(i);
    }
    (reads, t0.elapsed().as_secs_f64(), mismatches)
}

/// Quiesced exactness pass: recompute every aggregate from a fresh
/// label snapshot and count divergences.
fn validate_exact(client: &Client, n: usize, sample: usize) -> (u64, u64) {
    let snap = client.snapshot_now();
    let (components, hist, topk_sizes, size_by_label) = recompute(&snap.labels);
    let mut mismatches = 0u64;
    if client.num_components() as u64 != components {
        mismatches += 1;
    }
    let view = client.analytics();
    if view.sealed || view.components != components || view.hist.to_vec() != hist {
        mismatches += 1;
    }
    let (entries, _epoch, _gen, sealed) = client.topk(TOPK_CAP);
    let got: Vec<u64> = entries.iter().map(|&(_, s)| s).collect();
    if sealed || got != topk_sizes {
        mismatches += 1;
    }
    let mut checked = 0u64;
    let stride = (n / sample).max(1);
    for v in (0..n).step_by(stride) {
        checked += 1;
        match client.component_size(v as u32) {
            Ok((_root, size)) if size == size_by_label[&snap.labels[v]] => {}
            _ => mismatches += 1,
        }
    }
    (checked, mismatches)
}

fn main() {
    let mut test_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            test_mode = true;
        }
    }
    let (n, load_batches, batch_ops, scan_iters, delta_iters, reads) = if test_mode {
        (4_000usize, 30usize, 256usize, 8u64, 20_000u64, 30_000u64)
    } else {
        (1 << 20, 192, 8192, 48, 2_000_000, 1_500_000)
    };

    println!("== analytics: delta-maintained aggregates vs the O(n) scan ==");
    println!("n={n} load={load_batches}x{batch_ops} ops\n");

    let mut svc = Service::start(ServiceConfig { n, shards: 4, ..ServiceConfig::default() })
        .expect("service starts");
    let client = svc.client();
    let mut rng = SplitMix64::new(0xa9a1_2026);
    for _ in 0..load_batches {
        client.submit(churn_batch(&mut rng, n, batch_ops)).expect("load");
    }
    client.quiesce(QUIESCE).expect("quiesce after load");

    // 1. Publish-path count: full label scan (the removed code path) vs
    // the delta-maintained count every verb now reads.
    let labels = client.snapshot_now().labels.clone();
    let t0 = Instant::now();
    for _ in 0..scan_iters {
        black_box(cc_graph::stats::count_distinct_labels(black_box(&labels)));
    }
    let scan_ns = t0.elapsed().as_nanos() as f64 / scan_iters as f64;
    let t0 = Instant::now();
    for _ in 0..delta_iters {
        black_box(client.num_components());
    }
    let delta_ns = t0.elapsed().as_nanos() as f64 / delta_iters as f64;
    let publish_speedup = scan_ns / delta_ns.max(1e-9);

    // 2. Analytical reads under write load.
    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let writer = {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        let mut rng = SplitMix64::new(0xbeef_2026);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let batch = churn_batch(&mut rng, n, 1024);
                let len = batch.len() as u64;
                if client.submit(batch).is_err() {
                    break;
                }
                writes.fetch_add(len, Ordering::Relaxed);
            }
        })
    };
    let (reads_total, read_secs, read_mismatches) = drive_reads(&client, n, reads);
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer joins");
    let writes_total = writes.load(Ordering::Relaxed);
    let reads_per_sec = reads_total as f64 / read_secs.max(1e-9);

    // 3. Quiesced exactness.
    client.quiesce(QUIESCE).expect("quiesce after churn");
    let (validated, exact_mismatches) = validate_exact(&client, n, 4096);
    let mismatches = read_mismatches + exact_mismatches;
    svc.shutdown();

    let mut t = Table::new(vec!["Measurement", "value"]);
    t.row(vec!["scan ns (old publish path)".into(), format!("{scan_ns:.0}")]);
    t.row(vec!["delta ns (COMPONENTS now)".into(), format!("{delta_ns:.0}")]);
    t.row(vec!["publish speedup".into(), format!("{publish_speedup:.1}x")]);
    t.row(vec!["reads/s under write load".into(), format!("{reads_per_sec:.3e}")]);
    t.row(vec!["writes during read phase".into(), writes_total.to_string()]);
    t.row(vec!["exactness sample".into(), validated.to_string()]);
    t.row(vec!["mismatches".into(), mismatches.to_string()]);
    if test_mode {
        println!("analytics: test ok ({validated} vertices validated, {mismatches} mismatches)");
    } else {
        t.print();
    }
    assert_eq!(mismatches, 0, "analytics aggregates diverged from the recomputed partition");
    assert!(
        test_mode || publish_speedup > 1.0,
        "delta count ({delta_ns:.0}ns) must beat the O(n) scan ({scan_ns:.0}ns)"
    );

    let speedup_json = if test_mode { "null".to_string() } else { format!("{publish_speedup:.1}") };
    let reads_json = if test_mode { "null".to_string() } else { format!("{reads_per_sec:.1}") };
    let json = format!(
        "{{\n  \"bench\": \"analytics\",\n  \"test_mode\": {test_mode},\n  \"n\": {n},\n  \
         \"load_ops\": {load_ops},\n  \"scan_ns\": {scan_ns:.1},\n  \
         \"delta_ns\": {delta_ns:.1},\n  \"publish_speedup\": {speedup_json},\n  \
         \"reads_per_sec\": {reads_json},\n  \"reads_total\": {reads_total},\n  \
         \"writes_under_read\": {writes_total},\n  \"validated_vertices\": {validated},\n  \
         \"mismatches\": {mismatches}\n}}\n",
        load_ops = load_batches * batch_ops,
    );
    match write_bench_json("BENCH_analytics.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("analytics: could not write BENCH_analytics.json: {e}"),
    }
}
