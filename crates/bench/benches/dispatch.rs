//! Dyn vs. static dispatch, side by side: times the union-find finish
//! phase through (a) the pre-refactor hot loop — a `Box<dyn Unite>` with
//! one virtual call and a mandatory `&mut u64` hop write per edge — and
//! (b) the monomorphized driver behind `UfSpec::dispatch` with telemetry
//! compiled out, for a set of representative variants.
//!
//! Prints a table and emits `BENCH_dispatch.json`
//! (`{variant, dyn_ns_per_edge, static_ns_per_edge, speedup}` per row) so
//! future PRs can compare perf trajectories. Accepts the criterion-style
//! `--test` flag (one tiny verification run per variant, no timing claims)
//! and an optional substring filter, so `cargo bench -- --test` smoke-runs
//! it in CI.

use cc_bench::harness::{json_escape, time_best_of, write_bench_json, Table};
use cc_graph::generators::rmat_default;
use cc_graph::stats::same_partition;
use cc_graph::{build_undirected, CsrGraph, NO_VERTEX};
use cc_unionfind::parents::{parents_from_labels, snapshot_labels};
use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};
use connectit::{finish_components, FinishMethod};

/// The pre-refactor finish loop, kept verbatim as the dyn baseline: a
/// boxed `Unite` with per-edge virtual dispatch and the then-mandatory
/// hop accounting.
fn dyn_finish(g: &CsrGraph, initial: &[u32], spec: UfSpec, seed: u64) -> Vec<u32> {
    let stats = cc_unionfind::PathStats::new();
    let p = parents_from_labels(initial);
    let uf = spec.instantiate(g.num_vertices(), seed);
    let uf = uf.as_ref();
    g.for_each_edge_par_ctx(
        || (0u64, 0u64),
        |ctx, u, v| {
            let mut hops = 0u64;
            uf.unite(&p, u, v, &mut hops);
            ctx.0 += hops;
            ctx.1 = ctx.1.max(hops);
        },
        |(total, max)| stats.record_bulk(total, max, 0),
    );
    snapshot_labels(&p)
}

/// The post-refactor hot path: the public monomorphized driver with
/// telemetry off.
fn static_finish(g: &CsrGraph, initial: &[u32], spec: UfSpec, seed: u64) -> Vec<u32> {
    finish_components(g, &FinishMethod::UnionFind(spec), initial, NO_VERTEX, seed, None)
}

fn measured_variants() -> Vec<UfSpec> {
    vec![
        UfSpec::fastest(), // Union-Rem-CAS{SplitAtomicOne; FindNaive}: the default
        UfSpec::rem(UniteKind::RemCas, SpliceKind::HalveOne, FindKind::Halve),
        UfSpec::rem(UniteKind::RemLock, SpliceKind::SplitOne, FindKind::Naive),
        UfSpec::new(UniteKind::Async, FindKind::Naive),
        UfSpec::new(UniteKind::Async, FindKind::Compress),
        UfSpec::new(UniteKind::Hooks, FindKind::Naive),
        UfSpec::new(UniteKind::Early, FindKind::Naive),
        UfSpec::new(UniteKind::Jtb, FindKind::TwoTrySplit),
    ]
}

fn main() {
    let mut test_mode = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => test_mode = true,
            s if s.starts_with('-') => {}
            s => filter = Some(s.to_string()),
        }
    }

    let (scale, edges_factor, reps) = if test_mode { (10, 4, 1) } else { (14, 10, 5) };
    let el = rmat_default(scale, (1usize << scale) * edges_factor, 7);
    let g = build_undirected(el.num_vertices, &el.edges);
    let m = g.num_directed_edges();
    let initial: Vec<u32> = (0..g.num_vertices() as u32).collect();
    let expect = cc_unionfind::oracle_labels(el.num_vertices, &el.edges);

    println!("== dispatch: dyn (Box<dyn Unite> + hop write) vs static (monomorphized, NoCount) ==",);
    println!("graph: rmat scale={scale}, {m} directed edges; best of {reps} runs\n");

    let mut t = Table::new(vec!["Variant", "dyn ns/edge", "static ns/edge", "speedup"]);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for spec in measured_variants() {
        let name = spec.name();
        if let Some(f) = &filter {
            if !name.contains(f.as_str()) {
                continue;
            }
        }
        let (dyn_secs, dyn_labels) = time_best_of(reps, || dyn_finish(&g, &initial, spec, 3));
        let (static_secs, static_labels) =
            time_best_of(reps, || static_finish(&g, &initial, spec, 3));
        assert!(same_partition(&expect, &dyn_labels), "{name}: dyn path wrong");
        assert!(same_partition(&expect, &static_labels), "{name}: static path wrong");
        let dyn_ns = dyn_secs * 1e9 / m as f64;
        let static_ns = static_secs * 1e9 / m as f64;
        let speedup = dyn_ns / static_ns;
        speedups.push(speedup);
        t.row(vec![
            name.clone(),
            format!("{dyn_ns:.3}"),
            format!("{static_ns:.3}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push(format!(
            "    {{\"variant\": \"{}\", \"dyn_ns_per_edge\": {:.4}, \
             \"static_ns_per_edge\": {:.4}, \"speedup\": {:.4}}}",
            json_escape(&name),
            dyn_ns,
            static_ns,
            speedup
        ));
    }
    if test_mode {
        println!("dispatch: test ok ({} variants verified against the oracle)", rows.len());
    } else {
        t.print();
    }

    // The headline the regression gate watches: per-variant speedups are
    // noisy micro-timings (especially at --test sizes), but their
    // geometric mean across the variant table is stable run to run.
    // `null` when a name filter emptied the table — never a made-up 1.0.
    let geomean_speedup = if speedups.is_empty() {
        "null".to_string()
    } else {
        format!("{:.4}", cc_bench::harness::geomean(&speedups))
    };
    let json = format!(
        "{{\n  \"bench\": \"dispatch\",\n  \"test_mode\": {},\n  \"graph\": \
         {{\"generator\": \"rmat\", \"scale\": {}, \"directed_edges\": {}}},\n  \
         \"best_of\": {},\n  \"geomean_speedup\": {geomean_speedup},\n  \"variants\": [\n{}\n  ]\n}}\n",
        test_mode,
        scale,
        m,
        reps,
        rows.join(",\n")
    );
    match write_bench_json("BENCH_dispatch.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("dispatch: could not write BENCH_dispatch.json: {e}"),
    }
}
