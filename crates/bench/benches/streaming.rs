//! Criterion micro-version of Table 4 / Figure 4: batch-insert throughput
//! per streaming algorithm family.

use cc_graph::generators::rmat_default;
use cc_unionfind::UfSpec;
use connectit::{LtScheme, StreamAlgorithm, StreamingConnectivity, Update};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_streaming(c: &mut Criterion) {
    let n = 1usize << 15;
    let edges = rmat_default(15, n * 8, 3).edges;
    let batch: Vec<Update> = edges.iter().map(|&(u, v)| Update::Insert(u, v)).collect();
    let mut group = c.benchmark_group("table4_streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    for (name, alg) in [
        ("rem_cas", StreamAlgorithm::UnionFind(UfSpec::fastest())),
        (
            "async",
            StreamAlgorithm::UnionFind(UfSpec::new(
                cc_unionfind::UniteKind::Async,
                cc_unionfind::FindKind::Naive,
            )),
        ),
        ("shiloach_vishkin", StreamAlgorithm::ShiloachVishkin),
        ("liu_tarjan_crfa", StreamAlgorithm::LiuTarjan(LtScheme::crfa())),
    ] {
        group.bench_function(format!("{name}/one_batch"), |b| {
            b.iter(|| {
                let s = StreamingConnectivity::new(n, &alg, 1);
                s.process_batch(black_box(&batch));
                black_box(s)
            })
        });
        group.bench_function(format!("{name}/batches_of_10k"), |b| {
            b.iter(|| {
                let s = StreamingConnectivity::new(n, &alg, 1);
                for chunk in batch.chunks(10_000) {
                    s.process_batch(black_box(chunk));
                }
                black_box(s)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
