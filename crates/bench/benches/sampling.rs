//! Criterion micro-version of Tables 6-7 / Figures 19-24: sampling-phase
//! costs for k-out variants, BFS, and LDD.

use cc_graph::build_undirected;
use cc_graph::generators::{grid2d, rmat_default};
use connectit::{run_sampling, KOutVariant, SamplingMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let el = rmat_default(14, 160_000, 9);
    let social = build_undirected(el.num_vertices, &el.edges);
    let road = grid2d(160, 160);
    let mut group = c.benchmark_group("sampling");
    group.sample_size(10);
    for (gname, g) in [("rmat", &social), ("grid", &road)] {
        for variant in KOutVariant::ALL {
            let m = SamplingMethod::KOut { k: 2, variant };
            group.bench_function(format!("{gname}/{}", variant.name()), |b| {
                b.iter(|| black_box(run_sampling(g, &m, 5, false).frequent_count))
            });
        }
        group.bench_function(format!("{gname}/bfs"), |b| {
            b.iter(|| {
                black_box(run_sampling(g, &SamplingMethod::bfs_default(), 5, false).frequent_count)
            })
        });
        group.bench_function(format!("{gname}/ldd"), |b| {
            b.iter(|| {
                black_box(run_sampling(g, &SamplingMethod::ldd_default(), 5, false).frequent_count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
