//! The subscription plane, measured: pushing merge events must scale
//! with fan-out and fire promptly, and every delivered event must obey
//! the contract in `PROTOCOL.md` §3. Two measurements:
//!
//! 1. Fan-out throughput: `F` component subscriptions watch `F`
//!    singleton vertices that a chain of inserts then folds into one
//!    component — every merge is an identity change for the watchers on
//!    *both* sides, so the event volume grows quadratically in `F`
//!    (`events_per_sec`, reported; absolute, so not gated).
//! 2. Fire latency: pair subscriptions over disconnected vertices, one
//!    connecting insert each, submit→delivery measured per fire
//!    (`fire_p50_ns` / `fire_p999_ns`, reported).
//!
//! Every event is checked against a sequential trigger oracle — pair
//! subscriptions fire exactly once with `seq` 1 inside the connecting
//! batch's epoch window, component subscriptions fire exactly the
//! oracle's count with gap-free sequences — and `mismatches` gates
//! exactly at 0 via `connectit-bench check`. Prints a table and emits
//! `BENCH_subs.json`. Accepts the criterion-style `--test` flag (tiny
//! sizes, timings reported as `null` — no timing claims) so
//! `cargo bench -- --test` smoke-runs it in CI.

use cc_bench::harness::{write_bench_json, Table};
use cc_server::{Client, Service, ServiceConfig, SubEvent, SubKind, SubSink};
use connectit::Update;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(60);

/// Sink that timestamps every delivery.
#[derive(Default)]
struct CollectSink(Mutex<Vec<(SubEvent, Instant)>>);

impl SubSink for CollectSink {
    fn deliver(&self, ev: &SubEvent) -> bool {
        self.0.lock().push((*ev, Instant::now()));
        true
    }
}

impl CollectSink {
    fn len(&self) -> usize {
        self.0.lock().len()
    }

    fn snapshot(&self) -> Vec<(SubEvent, Instant)> {
        self.0.lock().clone()
    }
}

/// Waits until `sink` has collected `want` events (fires are drained on
/// the batcher's idle tick, so delivery can trail the submit).
fn await_events(sink: &CollectSink, want: usize) -> bool {
    let t0 = Instant::now();
    while sink.len() < want {
        if t0.elapsed() > DEADLINE {
            return false;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    true
}

/// Fan-out phase: `fanout` component subscriptions over the singleton
/// vertices `0..fanout`, folded into one component by a chain of
/// inserts. Returns `(events, elapsed_secs, mismatches)`.
fn run_fanout(client: &Client, sink: &Arc<CollectSink>, fanout: usize) -> (u64, f64, u64) {
    let mut mismatches = 0u64;
    let mut ids: HashMap<u64, u32> = HashMap::new();
    for v in 0..fanout as u32 {
        let (id, _epoch) = client
            .subscribe(SubKind::Component, 0, v, false, Some(sink.clone() as _))
            .expect("SUB");
        ids.insert(id, v);
    }

    // Sequential trigger oracle: on every union, the watchers bucketed
    // under both roots fire once (either side's identity changed).
    let mut root: Vec<u32> = (0..fanout as u32).collect();
    let mut members: Vec<Vec<u32>> = (0..fanout as u32).map(|v| vec![v]).collect();
    let mut expected: Vec<u64> = vec![0; fanout];
    for i in 0..fanout as u32 - 1 {
        let (ru, rv) = (root[i as usize] as usize, root[i as usize + 1] as usize);
        debug_assert_ne!(ru, rv);
        let (big, small) = if members[ru].len() >= members[rv].len() { (ru, rv) } else { (rv, ru) };
        for &w in members[big].iter().chain(&members[small]) {
            expected[w as usize] += 1;
        }
        let moved = std::mem::take(&mut members[small]);
        for &w in &moved {
            root[w as usize] = big as u32;
        }
        members[big].extend(moved);
    }
    let expected_total: u64 = expected.iter().sum();

    let t0 = Instant::now();
    for chunk in (0..fanout as u32 - 1).collect::<Vec<_>>().chunks(64) {
        let batch: Vec<Update> = chunk.iter().map(|&i| Update::Insert(i, i + 1)).collect();
        client.submit(batch).expect("fan-out batch");
    }
    if !await_events(sink, expected_total as usize) {
        mismatches += 1; // missed events: the deadline expired short.
    }
    let secs = t0.elapsed().as_secs_f64();

    // Exactness: per-subscription counts and gap-free sequences.
    let mut per_sub: HashMap<u64, Vec<u64>> = HashMap::new();
    for (ev, _at) in sink.snapshot() {
        let Some(&v) = ids.get(&ev.id) else {
            mismatches += 1;
            continue;
        };
        if ev.kind != SubKind::Component || ev.v != v {
            mismatches += 1;
        }
        per_sub.entry(ev.id).or_default().push(ev.seq);
    }
    for (id, &v) in &ids {
        let mut seqs = per_sub.remove(id).unwrap_or_default();
        seqs.sort_unstable();
        if seqs.len() as u64 != expected[v as usize]
            || seqs.iter().enumerate().any(|(i, &s)| s != i as u64 + 1)
        {
            mismatches += 1;
        }
        client.unsubscribe(*id).expect("UNSUB");
    }
    (expected_total, secs, mismatches)
}

/// Latency phase: `fires` pair subscriptions over disconnected vertex
/// pairs in `base..`, each connected by its own single-insert batch.
/// Returns `(latencies_ns, mismatches)`.
fn run_latency(client: &Client, base: u32, fires: usize) -> (Vec<u64>, u64) {
    let mut mismatches = 0u64;
    let mut lat = Vec::with_capacity(fires);
    for k in 0..fires as u32 {
        let (u, v) = (base + 2 * k, base + 2 * k + 1);
        let sink = Arc::new(CollectSink::default());
        let e_pre = client.epoch();
        let (id, _epoch) =
            client.subscribe(SubKind::Pair, u, v, false, Some(sink.clone() as _)).expect("SUB");
        let t0 = Instant::now();
        client.submit(vec![Update::Insert(u, v)]).expect("connecting insert");
        if !await_events(&sink, 1) {
            mismatches += 1;
            continue;
        }
        let e_post = client.epoch();
        let events = sink.snapshot();
        let (ev, at) = events[0];
        lat.push(at.duration_since(t0).as_nanos() as u64);
        if events.len() != 1
            || ev.id != id
            || ev.kind != SubKind::Pair
            || (ev.u, ev.v) != (u, v)
            || ev.seq != 1
            || ev.epoch <= e_pre
            || ev.epoch > e_post
        {
            mismatches += 1;
        }
    }
    lat.sort_unstable();
    (lat, mismatches)
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let mut test_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            test_mode = true;
        }
    }
    let (fanout, fires) = if test_mode { (96usize, 64usize) } else { (1024, 2048) };
    let n = fanout + 2 * fires + 64;

    println!("== subs: merge-event fan-out and fire latency ==");
    println!("n={n} fanout={fanout} component subs, {fires} pair fires\n");

    let mut svc = Service::start(ServiceConfig { n, shards: 4, ..ServiceConfig::default() })
        .expect("service starts");
    let client = svc.client();

    let fan_sink = Arc::new(CollectSink::default());
    let (fan_events, fan_secs, fan_mismatches) = run_fanout(&client, &fan_sink, fanout);
    let events_per_sec = fan_events as f64 / fan_secs.max(1e-9);

    let (lat, lat_mismatches) = run_latency(&client, fanout as u32, fires);
    let (p50, p999) = (quantile(&lat, 0.5), quantile(&lat, 0.999));
    let mismatches = fan_mismatches + lat_mismatches;
    svc.shutdown();

    let mut t = Table::new(vec!["Measurement", "value"]);
    t.row(vec!["fan-out events".into(), fan_events.to_string()]);
    t.row(vec!["fan-out events/s".into(), format!("{events_per_sec:.3e}")]);
    t.row(vec!["fire p50 ns".into(), p50.to_string()]);
    t.row(vec!["fire p999 ns".into(), p999.to_string()]);
    t.row(vec!["validated fires".into(), lat.len().to_string()]);
    t.row(vec!["mismatches".into(), mismatches.to_string()]);
    if test_mode {
        println!(
            "subs: test ok ({fan_events} fan-out events, {} fires, {mismatches} mismatches)",
            lat.len()
        );
    } else {
        t.print();
    }
    assert_eq!(mismatches, 0, "subscription delivery diverged from the trigger oracle");

    let (eps_json, p50_json, p999_json) = if test_mode {
        ("null".into(), "null".to_string(), "null".to_string())
    } else {
        (format!("{events_per_sec:.1}"), p50.to_string(), p999.to_string())
    };
    let json = format!(
        "{{\n  \"bench\": \"subs\",\n  \"test_mode\": {test_mode},\n  \"n\": {n},\n  \
         \"fanout_subs\": {fanout},\n  \"fanout_events\": {fan_events},\n  \
         \"events_per_sec\": {eps_json},\n  \"latency_fires\": {fires},\n  \
         \"fire_p50_ns\": {p50_json},\n  \"fire_p999_ns\": {p999_json},\n  \
         \"mismatches\": {mismatches}\n}}\n"
    );
    match write_bench_json("BENCH_subs.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("subs: could not write BENCH_subs.json: {e}"),
    }
}
