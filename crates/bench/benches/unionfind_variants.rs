//! Criterion micro-version of Figure 3: representative union-find variants
//! in the No Sampling setting.

use cc_graph::build_undirected;
use cc_graph::generators::rmat_default;
use cc_unionfind::{FindKind, SpliceKind, UfSpec, UniteKind};
use connectit::{connectivity_seeded, FinishMethod, SamplingMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let el = rmat_default(14, 160_000, 5);
    let g = build_undirected(el.num_vertices, &el.edges);
    let mut group = c.benchmark_group("fig3_unionfind");
    group.sample_size(10);
    let variants = [
        UfSpec::fastest(),
        UfSpec::rem(UniteKind::RemCas, SpliceKind::Splice, FindKind::Naive),
        UfSpec::rem(UniteKind::RemLock, SpliceKind::SplitOne, FindKind::Naive),
        UfSpec::new(UniteKind::Async, FindKind::Naive),
        UfSpec::new(UniteKind::Async, FindKind::Compress),
        UfSpec::new(UniteKind::Hooks, FindKind::Naive),
        UfSpec::new(UniteKind::Early, FindKind::Naive),
        UfSpec::new(UniteKind::Jtb, FindKind::TwoTrySplit),
    ];
    for spec in variants {
        group.bench_function(spec.name(), |b| {
            b.iter(|| {
                black_box(connectivity_seeded(
                    &g,
                    &SamplingMethod::None,
                    &FinishMethod::UnionFind(spec),
                    3,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
