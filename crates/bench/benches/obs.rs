//! Instrumentation overhead, measured: the observability plane must be
//! near-zero-cost on the service's hot path. Three measurements:
//!
//! 1. Mixed insert/query closed-loop throughput through the (always
//!    instrumented) service — the shipped hot path.
//! 2. The full per-batch instrumentation bundle (verb counter, batch
//!    counters, three histogram records, three flight-recorder events)
//!    in isolation — the marginal cost the plane adds to one batch.
//! 3. A full `METRICS` registry render — the scrape cost.
//!
//! The headline `overhead_ratio` charges the workload the measured
//! bundle a *second* time per executed batch — an upper bound on the
//! plane's share of batch time — and must stay within 1.05x
//! (`overhead_within_bound`, gated exactly by `connectit-bench check`).
//!
//! Prints a table and emits `BENCH_obs.json`. Accepts the
//! criterion-style `--test` flag (tiny sizes, no timing claims) so
//! `cargo bench -- --test` smoke-runs it in CI.

use cc_bench::harness::{write_bench_json, Table};
use cc_parallel::SplitMix64;
use cc_server::obs::{Event, Obs};
use cc_server::{Service, ServiceConfig};
use connectit::Update;
use std::hint::black_box;
use std::time::Instant;

/// Drives a mixed insert/query closed loop and returns
/// `(ops_per_sec, batches_executed, elapsed_secs)`.
fn drive_workload(n: usize, batches: usize, batch_ops: usize) -> (f64, u64, f64) {
    let mut svc = Service::start(ServiceConfig { n, shards: 4, ..ServiceConfig::default() })
        .expect("service starts");
    let client = svc.client();
    let mut rng = SplitMix64::new(0x0b5e_2026);
    let t0 = Instant::now();
    for _ in 0..batches {
        let batch: Vec<Update> = (0..batch_ops)
            .map(|i| {
                let u = (rng.next_u64() % n as u64) as u32;
                let v = (rng.next_u64() % n as u64) as u32;
                // 1-in-4 queries keeps both answer paths warm.
                if i % 4 == 0 {
                    Update::Query(u, v)
                } else {
                    Update::Insert(u, v)
                }
            })
            .collect();
        client.submit(batch).expect("submit");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let executed = client.epoch();
    svc.shutdown();
    let total_ops = (batches * batch_ops) as f64;
    (total_ops / elapsed.max(1e-9), executed, elapsed)
}

/// One batch's worth of instrumentation, exactly as the batcher and its
/// downstream layers pay it (counters, histograms, recorder events).
#[inline(never)]
fn instrument_one_batch(obs: &Obs, epoch: u64, ops: u64) {
    let m = &obs.metrics;
    m.record_request(black_box("B"));
    obs.recorder.record(Event::BatchFormed { epoch, ops });
    m.queue_wait_ns.record_n(black_box(12_345), ops);
    m.apply_ns.record(black_box(67_890));
    obs.recorder.record(Event::EngineApplied { epoch, ops });
    m.latency_ns.record_n(black_box(98_765), ops);
    m.inserts_total.add(ops - ops / 4);
    m.queries_total.add(ops / 4);
    m.batches_total.inc();
    m.epoch.set_max(epoch);
    m.components.set(black_box(4096));
    obs.recorder.record(Event::SnapshotPublished { epoch, components: 4096 });
}

/// Measures the bundle in a tight loop; returns ns per batch.
fn measure_bundle(iters: u64, batch_ops: u64) -> f64 {
    let obs = Obs::new();
    let t0 = Instant::now();
    for i in 0..iters {
        instrument_one_batch(&obs, i + 1, batch_ops);
    }
    let elapsed = t0.elapsed().as_nanos() as f64;
    black_box(obs.metrics.batches_total.get());
    elapsed / iters as f64
}

/// Measures a full registry render; returns ns per scrape.
fn measure_scrape(iters: u64) -> f64 {
    let obs = Obs::new();
    // A populated registry (including a follower row) so the render
    // cost is representative, not the all-zeros fast case.
    for i in 0..1024 {
        instrument_one_batch(&obs, i + 1, 512);
    }
    let _slot = obs.metrics.register_follower(7);
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(obs.metrics.render().len());
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut test_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--test" {
            test_mode = true;
        }
    }
    let (n, batches, batch_ops, bundle_iters, scrape_iters) = if test_mode {
        (4_000, 50, 256, 20_000u64, 200u64)
    } else {
        (1 << 20, 256, 8192, 2_000_000u64, 20_000u64)
    };

    println!("== obs: instrumentation overhead on the service hot path ==");
    println!("n={n} batches={batches}x{batch_ops} ops each\n");

    let (ops_per_sec, executed, elapsed) = drive_workload(n, batches, batch_ops);
    let bundle_ns = measure_bundle(bundle_iters, batch_ops as u64);
    let scrape_ns = measure_scrape(scrape_iters);

    // Charge every executed batch the measured bundle a second time: if
    // even *doubled* instrumentation stays under the bound, the plane's
    // actual share of batch time is comfortably below it.
    let charged = executed as f64 * bundle_ns / 1e9;
    let overhead_ratio = (elapsed + charged) / elapsed.max(1e-9);
    let within = overhead_ratio <= 1.05;

    let mut t = Table::new(vec!["Measurement", "value"]);
    t.row(vec!["workload ops/s".into(), format!("{ops_per_sec:.3e}")]);
    t.row(vec!["batches executed".into(), executed.to_string()]);
    t.row(vec!["bundle ns/batch".into(), format!("{bundle_ns:.0}")]);
    t.row(vec!["scrape ns".into(), format!("{scrape_ns:.0}")]);
    t.row(vec!["overhead ratio".into(), format!("{overhead_ratio:.4}x")]);
    t.row(vec!["within 1.05x".into(), within.to_string()]);
    if test_mode {
        println!("obs: test ok (overhead ratio {overhead_ratio:.4}x, within bound: {within})");
    } else {
        t.print();
    }
    assert!(
        within,
        "instrumentation overhead {overhead_ratio:.4}x exceeds the 1.05x bound \
         (bundle {bundle_ns:.0}ns/batch over {executed} batches in {elapsed:.3}s)"
    );

    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"test_mode\": {test_mode},\n  \"n\": {n},\n  \
         \"batches\": {batches},\n  \"batch_ops\": {batch_ops},\n  \
         \"ops_per_sec\": {ops_per_sec:.1},\n  \"batches_executed\": {executed},\n  \
         \"bundle_ns_per_batch\": {bundle_ns:.1},\n  \"scrape_ns\": {scrape_ns:.1},\n  \
         \"overhead_ratio\": {overhead_ratio:.5},\n  \"overhead_within_bound\": {within}\n}}\n"
    );
    match write_bench_json("BENCH_obs.json", &json) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("obs: could not write BENCH_obs.json: {e}"),
    }
}
