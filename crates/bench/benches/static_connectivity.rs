//! Criterion micro-version of Table 3: the fastest finish under each
//! sampling mode, plus the slower families, on a small RMAT graph.

use cc_graph::build_undirected;
use cc_graph::generators::rmat_default;
use connectit::{connectivity_seeded, FinishMethod, LtScheme, SamplingMethod};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_static(c: &mut Criterion) {
    let el = rmat_default(14, 160_000, 7);
    let g = build_undirected(el.num_vertices, &el.edges);
    let mut group = c.benchmark_group("table3_static");
    group.sample_size(10);
    for (sname, sampling) in [
        ("none", SamplingMethod::None),
        ("kout", SamplingMethod::kout_default()),
        ("bfs", SamplingMethod::bfs_default()),
        ("ldd", SamplingMethod::ldd_default()),
    ] {
        group.bench_function(format!("rem_cas/{sname}"), |b| {
            b.iter(|| black_box(connectivity_seeded(&g, &sampling, &FinishMethod::fastest(), 3)))
        });
    }
    for (fname, finish) in [
        ("shiloach_vishkin", FinishMethod::ShiloachVishkin),
        ("liu_tarjan_crfa", FinishMethod::LiuTarjan(LtScheme::crfa())),
        ("stergiou", FinishMethod::Stergiou),
        ("label_prop", FinishMethod::LabelPropagation),
    ] {
        group.bench_function(format!("{fname}/none"), |b| {
            b.iter(|| black_box(connectivity_seeded(&g, &SamplingMethod::None, &finish, 3)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static);
criterion_main!(benches);
