//! Direction-optimizing breadth-first search (Beamer et al.), the traversal
//! behind BFS sampling, BFSCC, and the diameter estimates.

use crate::types::{CsrGraph, VertexId, NO_VERTEX};
use cc_parallel::{pack_indices, parallel_for_chunks, parallel_sum, parallel_tabulate};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of a BFS traversal.
pub struct BfsResult {
    /// `parents[v]` is the BFS-tree parent of `v`, `v` itself for the
    /// source, and [`NO_VERTEX`] for unreached vertices.
    pub parents: Vec<VertexId>,
    /// Number of vertices reached (including the source).
    pub num_visited: usize,
    /// Number of frontier rounds executed (a lower bound on eccentricity).
    pub rounds: usize,
}

/// Fraction of `m` above which the traversal switches to the dense
/// (bottom-up) direction; mirrors the standard Beamer heuristic.
const DENSE_EDGE_FRACTION: usize = 20;
/// Fraction of `n` below which a dense traversal switches back to sparse.
const SPARSE_VERTEX_FRACTION: usize = 20;

/// Runs a direction-optimizing BFS from `src`.
pub fn bfs(g: &CsrGraph, src: VertexId) -> BfsResult {
    bfs_multi(g, &[src])
}

/// Runs a BFS from multiple sources simultaneously (each reached vertex gets
/// the parent that claimed it first). Used by LDD-style decompositions and
/// by multi-sweep diameter estimation.
pub fn bfs_multi(g: &CsrGraph, sources: &[VertexId]) -> BfsResult {
    let n = g.num_vertices();
    let m = g.num_directed_edges();
    let parents: Vec<AtomicU32> = parallel_tabulate(n, |_| AtomicU32::new(NO_VERTEX));
    let mut frontier: Vec<VertexId> = Vec::new();
    for &s in sources {
        if parents[s as usize]
            .compare_exchange(NO_VERTEX, s, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            frontier.push(s);
        }
    }
    let mut num_visited = frontier.len();
    let mut rounds = 0usize;
    let mut dense_mode = false;
    // Round-stamped frontier flags, allocated once and never cleared:
    // `flags[v] == round` means v is in the current frontier.
    let mut flags: Vec<AtomicU32> = Vec::new();

    while !frontier.is_empty() {
        rounds += 1;
        let frontier_edges: usize = parallel_sum(frontier.len(), |i| g.degree(frontier[i]));
        let go_dense = if dense_mode {
            frontier.len() >= n / SPARSE_VERTEX_FRACTION
        } else {
            frontier_edges >= m / DENSE_EDGE_FRACTION.max(1)
        };
        if go_dense {
            if flags.is_empty() {
                flags = parallel_tabulate(n, |_| AtomicU32::new(0));
            }
            // Round stamps avoid clearing the flag array: `cur` marks the
            // current frontier, `nxt` marks vertices claimed this round.
            let cur = 2 * rounds as u32;
            let nxt = cur + 1;
            parallel_for_chunks(frontier.len(), |r| {
                for i in r {
                    flags[frontier[i] as usize].store(cur, Ordering::Relaxed);
                }
            });
            // Bottom-up: unvisited vertices look for a frontier neighbor.
            parallel_for_chunks(n, |r| {
                for v in r {
                    if parents[v].load(Ordering::Relaxed) == NO_VERTEX {
                        for &u in g.neighbors(v as VertexId) {
                            if flags[u as usize].load(Ordering::Relaxed) == cur {
                                parents[v].store(u, Ordering::Relaxed);
                                flags[v].store(nxt, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
            });
            frontier = pack_indices(n, |v| flags[v].load(Ordering::Relaxed) == nxt);
            dense_mode = true;
        } else {
            // Top-down: frontier vertices claim unvisited neighbors.
            let locals: Mutex<Vec<Vec<VertexId>>> = Mutex::new(Vec::new());
            parallel_for_chunks(frontier.len(), |r| {
                let mut local = Vec::new();
                for i in r {
                    let u = frontier[i];
                    for &v in g.neighbors(u) {
                        if parents[v as usize].load(Ordering::Relaxed) == NO_VERTEX
                            && parents[v as usize]
                                .compare_exchange(NO_VERTEX, u, Ordering::AcqRel, Ordering::Relaxed)
                                .is_ok()
                        {
                            local.push(v);
                        }
                    }
                }
                if !local.is_empty() {
                    locals.lock().push(local);
                }
            });
            frontier = locals.into_inner().concat();
            dense_mode = false;
        }
        num_visited += frontier.len();
    }

    BfsResult { parents: cc_parallel::snapshot_u32(&parents), num_visited, rounds }
}

/// Estimates the graph's diameter with `sweeps` alternating BFS sweeps
/// (double-sweep lower bound). Returns the largest eccentricity observed.
pub fn approx_diameter(g: &CsrGraph, sweeps: usize, seed: u64) -> usize {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = 0usize;
    let mut src = rng.gen_range(0..n) as VertexId;
    for _ in 0..sweeps.max(1) {
        let res = bfs(g, src);
        if res.rounds == 0 {
            break;
        }
        best = best.max(res.rounds.saturating_sub(1));
        // Jump to a most-distant vertex: any vertex claimed in the last round.
        let far = res
            .parents
            .iter()
            .enumerate()
            .filter(|(v, &p)| p != NO_VERTEX && *v as u32 != src)
            .map(|(v, _)| v as VertexId)
            .next_back();
        match far {
            Some(f) => src = f,
            None => break,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid2d, path, star};

    #[test]
    fn bfs_reaches_component() {
        let g = grid2d(30, 30);
        let res = bfs(g_src(&g), 0);
        assert_eq!(res.num_visited, 900);
        assert!(res.parents.iter().all(|&p| p != NO_VERTEX));
        // Grid eccentricity from corner = rows + cols - 2 = 58 → 59 rounds.
        assert_eq!(res.rounds, 59);
    }

    fn g_src(g: &CsrGraph) -> &CsrGraph {
        g
    }

    #[test]
    fn bfs_parents_form_tree() {
        let g = grid2d(20, 25);
        let res = bfs(&g, 7);
        assert_eq!(res.parents[7], 7);
        for v in 0..g.num_vertices() as VertexId {
            if v != 7 {
                let p = res.parents[v as usize];
                assert!(g.neighbors(v).contains(&p), "parent of {v} must be a neighbor");
            }
        }
    }

    #[test]
    fn bfs_respects_components() {
        let g = crate::builder::build_undirected(6, &[(0, 1), (1, 2), (3, 4)]);
        let res = bfs(&g, 0);
        assert_eq!(res.num_visited, 3);
        assert_eq!(res.parents[3], NO_VERTEX);
        assert_eq!(res.parents[5], NO_VERTEX);
    }

    #[test]
    fn bfs_star_uses_dense_path() {
        // A star forces a huge frontier after round one, exercising the
        // dense (bottom-up) branch.
        let g = star(100_000);
        let res = bfs(&g, 0);
        assert_eq!(res.num_visited, 100_000);
        assert_eq!(res.rounds, 2);
        assert!((1..100_000).all(|v| res.parents[v] == 0));
    }

    #[test]
    fn bfs_multi_partitions() {
        let g = path(100);
        let res = bfs_multi(&g, &[0, 99]);
        assert_eq!(res.num_visited, 100);
        assert!(res.rounds <= 51);
    }

    #[test]
    fn diameter_of_path() {
        let g = path(500);
        let d = approx_diameter(&g, 4, 1);
        assert_eq!(d, 499);
    }
}
