//! Ligra-style frontier abstraction: `VertexSubset` + `edge_map` /
//! `vertex_map`, the programming model the paper's C++ implementation
//! builds on (ConnectIt is implemented inside Ligra/GBBS, Section 3.6).
//!
//! A [`VertexSubset`] is a set of vertices in either sparse (vertex list)
//! or dense (flag array) representation; [`edge_map`] applies an update
//! function over the out-edges of the subset and returns the subset of
//! vertices the updates activated, choosing the traversal direction by the
//! Beamer threshold exactly as Ligra does.

use crate::types::{CsrGraph, VertexId};
use cc_parallel::{pack_indices, parallel_for_chunks, parallel_sum, parallel_tabulate};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU8, Ordering};

/// A subset of the vertices of a graph.
pub enum VertexSubset {
    /// Explicit vertex list (efficient when small).
    Sparse(Vec<VertexId>),
    /// Flag per vertex (efficient when large).
    Dense(Vec<AtomicU8>),
}

impl VertexSubset {
    /// The empty subset.
    pub fn empty() -> Self {
        VertexSubset::Sparse(Vec::new())
    }

    /// A subset holding a single vertex.
    pub fn single(v: VertexId) -> Self {
        VertexSubset::Sparse(vec![v])
    }

    /// A sparse subset from a vertex list.
    pub fn from_vertices(vs: Vec<VertexId>) -> Self {
        VertexSubset::Sparse(vs)
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(v) => v.len(),
            VertexSubset::Dense(flags) => {
                parallel_sum(flags.len(), |i| usize::from(flags[i].load(Ordering::Relaxed) == 1))
            }
        }
    }

    /// True when the subset is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            VertexSubset::Sparse(v) => v.is_empty(),
            VertexSubset::Dense(_) => self.len() == 0,
        }
    }

    /// Membership test (O(len) for sparse, O(1) for dense).
    pub fn contains(&self, v: VertexId) -> bool {
        match self {
            VertexSubset::Sparse(list) => list.contains(&v),
            VertexSubset::Dense(flags) => flags[v as usize].load(Ordering::Relaxed) == 1,
        }
    }

    /// Materializes the sparse representation.
    pub fn to_sparse(&self) -> Vec<VertexId> {
        match self {
            VertexSubset::Sparse(v) => v.clone(),
            VertexSubset::Dense(flags) => {
                pack_indices(flags.len(), |v| flags[v].load(Ordering::Relaxed) == 1)
            }
        }
    }

    /// Materializes the dense representation for a graph on `n` vertices.
    fn to_dense(&self, n: usize) -> Vec<AtomicU8> {
        match self {
            VertexSubset::Dense(_) => unreachable!("caller checks"),
            VertexSubset::Sparse(list) => {
                let flags: Vec<AtomicU8> = parallel_tabulate(n, |_| AtomicU8::new(0));
                parallel_for_chunks(list.len(), |r| {
                    for i in r {
                        flags[list[i] as usize].store(1, Ordering::Relaxed);
                    }
                });
                flags
            }
        }
    }

    /// Sum of out-degrees of the members.
    pub fn out_degrees(&self, g: &CsrGraph) -> usize {
        match self {
            VertexSubset::Sparse(list) => parallel_sum(list.len(), |i| g.degree(list[i])),
            VertexSubset::Dense(flags) => parallel_sum(flags.len(), |v| {
                if flags[v].load(Ordering::Relaxed) == 1 {
                    g.degree(v as VertexId)
                } else {
                    0
                }
            }),
        }
    }
}

/// Ligra's direction threshold: dense when frontier out-degrees exceed
/// `m / 20`.
const DIRECTION_THRESHOLD_DENOM: usize = 20;

/// Applies `update(u, v)` over every edge `(u, v)` with `u` in `frontier`
/// and `cond(v)` true. `update` returns whether `v` became active; the
/// returned subset contains each activated vertex at most once (`update`
/// must be atomic, i.e. return true for exactly one racing caller, like a
/// successful CAS).
///
/// Direction is chosen automatically: sparse frontiers push, heavy
/// frontiers are processed bottom-up (`v` pulls from any frontier
/// neighbor, stopping at the first success).
pub fn edge_map<U, C>(g: &CsrGraph, frontier: &VertexSubset, update: U, cond: C) -> VertexSubset
where
    U: Fn(VertexId, VertexId) -> bool + Sync,
    C: Fn(VertexId) -> bool + Sync,
{
    let n = g.num_vertices();
    let m = g.num_directed_edges();
    let heavy = frontier.out_degrees(g) >= m / DIRECTION_THRESHOLD_DENOM.max(1);
    if heavy {
        // Bottom-up (pull): candidates scan for a frontier neighbor.
        let dense = match frontier {
            VertexSubset::Dense(flags) => None.or(Some(flags as &[AtomicU8])),
            VertexSubset::Sparse(_) => None,
        };
        let owned;
        let flags: &[AtomicU8] = match dense {
            Some(f) => f,
            None => {
                owned = frontier.to_dense(n);
                &owned
            }
        };
        let next: Vec<AtomicU8> = parallel_tabulate(n, |_| AtomicU8::new(0));
        parallel_for_chunks(n, |r| {
            for v in r {
                let v = v as VertexId;
                if !cond(v) {
                    continue;
                }
                for &u in g.neighbors(v) {
                    if flags[u as usize].load(Ordering::Relaxed) == 1 && update(u, v) {
                        next[v as usize].store(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
        });
        VertexSubset::Dense(next)
    } else {
        // Top-down (push).
        let sparse = frontier.to_sparse();
        let locals: Mutex<Vec<Vec<VertexId>>> = Mutex::new(Vec::new());
        parallel_for_chunks(sparse.len(), |r| {
            let mut local = Vec::new();
            for i in r {
                let u = sparse[i];
                for &v in g.neighbors(u) {
                    if cond(v) && update(u, v) {
                        local.push(v);
                    }
                }
            }
            if !local.is_empty() {
                locals.lock().push(local);
            }
        });
        VertexSubset::Sparse(locals.into_inner().concat())
    }
}

/// Applies `f` to every member of the subset.
pub fn vertex_map<F>(frontier: &VertexSubset, f: F)
where
    F: Fn(VertexId) + Sync,
{
    match frontier {
        VertexSubset::Sparse(list) => {
            parallel_for_chunks(list.len(), |r| {
                for i in r {
                    f(list[i]);
                }
            });
        }
        VertexSubset::Dense(flags) => {
            parallel_for_chunks(flags.len(), |r| {
                for v in r {
                    if flags[v].load(Ordering::Relaxed) == 1 {
                        f(v as VertexId);
                    }
                }
            });
        }
    }
}

/// BFS written against the frontier abstraction (a Ligra program); used by
/// tests to cross-validate [`crate::bfs::bfs`] and as the canonical
/// example of the interface.
pub fn bfs_with_edge_map(g: &CsrGraph, src: VertexId) -> Vec<VertexId> {
    use crate::types::NO_VERTEX;
    use std::sync::atomic::AtomicU32;
    let n = g.num_vertices();
    let parents: Vec<AtomicU32> = parallel_tabulate(n, |_| AtomicU32::new(NO_VERTEX));
    parents[src as usize].store(src, Ordering::Relaxed);
    let mut frontier = VertexSubset::single(src);
    while !frontier.is_empty() {
        frontier = edge_map(
            g,
            &frontier,
            |u, v| {
                parents[v as usize]
                    .compare_exchange(NO_VERTEX, u, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            },
            |v| parents[v as usize].load(Ordering::Relaxed) == NO_VERTEX,
        );
    }
    cc_parallel::snapshot_u32(&parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected;
    use crate::generators::{grid2d, rmat_default, star};
    use crate::types::NO_VERTEX;

    #[test]
    fn subset_representations_agree() {
        let s = VertexSubset::from_vertices(vec![1, 5, 9]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(5));
        assert!(!s.contains(2));
        let d = VertexSubset::Dense(s.to_dense(12));
        assert_eq!(d.len(), 3);
        assert!(d.contains(5));
        assert!(!d.contains(2));
        let mut back = d.to_sparse();
        back.sort_unstable();
        assert_eq!(back, vec![1, 5, 9]);
    }

    #[test]
    fn empty_subset() {
        let e = VertexSubset::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn edge_map_bfs_matches_reference_bfs() {
        for g in [grid2d(25, 25), star(5000)] {
            let via_frontier = bfs_with_edge_map(&g, 0);
            let reference = crate::bfs::bfs(&g, 0);
            // Same reachability; parents may differ but must be valid.
            for (v, &parent) in via_frontier.iter().enumerate() {
                assert_eq!(parent != NO_VERTEX, reference.parents[v] != NO_VERTEX);
                if parent != NO_VERTEX && v != 0 {
                    assert!(g.neighbors(v as u32).contains(&parent));
                }
            }
        }
    }

    #[test]
    fn edge_map_bfs_on_rmat_components() {
        let el = rmat_default(11, 8_000, 5);
        let g = build_undirected(el.num_vertices, &el.edges);
        let via_frontier = bfs_with_edge_map(&g, 3);
        let reference = crate::bfs::bfs(&g, 3);
        assert_eq!(via_frontier.iter().filter(|&&p| p != NO_VERTEX).count(), reference.num_visited);
    }

    #[test]
    fn vertex_map_visits_each_member_once() {
        use std::sync::atomic::AtomicUsize;
        let s = VertexSubset::from_vertices((0..1000).step_by(3).collect());
        let count = AtomicUsize::new(0);
        vertex_map(&s, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), s.len());
    }
}
