//! Exact component statistics (sequential oracle) and dataset summaries —
//! the machinery behind Table 2 and behind every correctness check in the
//! test suites.

use crate::types::{CsrGraph, VertexId, NO_VERTEX};

/// Exact connectivity statistics for a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentStats {
    /// Number of connected components (isolated vertices count).
    pub num_components: usize,
    /// Size of the largest component.
    pub largest_size: usize,
    /// A canonical labeling: `labels[v]` is the smallest vertex id in `v`'s
    /// component.
    pub labels: Vec<VertexId>,
}

/// Computes exact components with a sequential traversal. This is the
/// trusted oracle: simple enough to be obviously correct.
pub fn component_stats(g: &CsrGraph) -> ComponentStats {
    let n = g.num_vertices();
    let mut labels = vec![NO_VERTEX; n];
    let mut num_components = 0usize;
    let mut largest = 0usize;
    let mut stack: Vec<VertexId> = Vec::new();
    for s in 0..n {
        if labels[s] != NO_VERTEX {
            continue;
        }
        num_components += 1;
        let mut size = 0usize;
        labels[s] = s as VertexId;
        stack.push(s as VertexId);
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in g.neighbors(u) {
                if labels[v as usize] == NO_VERTEX {
                    labels[v as usize] = s as VertexId;
                    stack.push(v);
                }
            }
        }
        largest = largest.max(size);
    }
    ComponentStats { num_components, largest_size: largest, labels }
}

/// Checks whether two labelings induce the same partition of `0..n`.
///
/// Parallel connectivity algorithms are free to pick any representative per
/// component, so correctness is "same partition", not "same labels".
pub fn same_partition(a: &[VertexId], b: &[VertexId]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let n = a.len();
    // Map each a-label to the b-label of its first occurrence and vice versa.
    let mut a2b: std::collections::HashMap<VertexId, VertexId> = std::collections::HashMap::new();
    let mut b2a: std::collections::HashMap<VertexId, VertexId> = std::collections::HashMap::new();
    for i in 0..n {
        match a2b.entry(a[i]) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != b[i] {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(b[i]);
            }
        }
        match b2a.entry(b[i]) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != a[i] {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(a[i]);
            }
        }
    }
    true
}

/// Counts distinct labels in a labeling.
pub fn count_distinct_labels(labels: &[VertexId]) -> usize {
    let mut set: Vec<VertexId> = labels.to_vec();
    set.sort_unstable();
    set.dedup();
    set.len()
}

/// The most frequent label and its multiplicity.
pub fn most_frequent_label(labels: &[VertexId]) -> (VertexId, usize) {
    let mut counts: std::collections::HashMap<VertexId, usize> = std::collections::HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts.into_iter().max_by_key(|&(_, c)| c).unwrap_or((NO_VERTEX, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected;
    use crate::generators::{grid2d, star};

    #[test]
    fn stats_on_two_components() {
        let g = build_undirected(6, &[(0, 1), (1, 2), (3, 4)]);
        let st = component_stats(&g);
        assert_eq!(st.num_components, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(st.largest_size, 3);
        assert_eq!(st.labels[0], st.labels[2]);
        assert_ne!(st.labels[0], st.labels[3]);
        assert_eq!(st.labels[5], 5);
    }

    #[test]
    fn stats_on_connected() {
        assert_eq!(component_stats(&grid2d(15, 15)).num_components, 1);
        assert_eq!(component_stats(&star(100)).largest_size, 100);
    }

    #[test]
    fn same_partition_accepts_relabeling() {
        let a = vec![0, 0, 2, 2, 4];
        let b = vec![9, 9, 7, 7, 1];
        assert!(same_partition(&a, &b));
    }

    #[test]
    fn same_partition_rejects_merge_and_split() {
        let a = vec![0, 0, 2, 2];
        let merged = vec![0, 0, 0, 0];
        let split = vec![0, 1, 2, 2];
        assert!(!same_partition(&a, &merged));
        assert!(!same_partition(&a, &split));
        assert!(!same_partition(&a, &[0, 0, 2]));
    }

    #[test]
    fn most_frequent_majority() {
        let labels = vec![3, 3, 3, 1, 2, 3];
        assert_eq!(most_frequent_label(&labels), (3, 4));
    }

    #[test]
    fn distinct_count() {
        assert_eq!(count_distinct_labels(&[1, 1, 2, 5, 5, 5]), 3);
        assert_eq!(count_distinct_labels(&[]), 0);
    }
}
