//! # cc-graph
//!
//! Graph substrate for the `connectit-rs` workspace: CSR/COO formats with a
//! parallel builder, synthetic generators standing in for the paper's
//! datasets, direction-optimizing BFS, low-diameter decomposition, byte
//! compression, edge-map lower-bound primitives, and the sequential
//! connectivity oracle used by every test.
//!
//! ```
//! use cc_graph::{builder::build_undirected, stats::component_stats};
//! let g = build_undirected(5, &[(0, 1), (1, 2), (3, 4)]);
//! let st = component_stats(&g);
//! assert_eq!(st.num_components, 2);
//! ```

#![warn(missing_docs)]

pub mod bfs;
pub mod builder;
pub mod compressed;
pub mod frontier;
pub mod generators;
pub mod io;
pub mod ldd;
pub mod primitives;
pub mod stats;
pub mod types;

pub use builder::build_undirected;
pub use types::{CsrGraph, Edge, EdgeList, VertexId, NO_VERTEX};
