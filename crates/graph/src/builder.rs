//! Parallel CSR construction: symmetrize, bucket by source, sort, dedupe.
//!
//! Mirrors the preprocessing the paper applies to its (originally directed)
//! web graphs: "we symmetrize them before applying our algorithms".

use crate::types::{CsrGraph, Edge, VertexId};
use cc_parallel::{parallel_for, parallel_for_chunks, parallel_tabulate, scan_exclusive};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Builds a symmetric, sorted, deduplicated CSR graph from an undirected
/// edge list. Self-loops are dropped; duplicate edges are merged.
pub fn build_undirected(n: usize, edges: &[Edge]) -> CsrGraph {
    let m2 = edges.len() * 2;
    if m2 == 0 {
        return CsrGraph::empty(n);
    }
    // Degree count over both directions, skipping self-loops.
    let degs: Vec<AtomicUsize> = parallel_tabulate(n, |_| AtomicUsize::new(0));
    parallel_for_chunks(edges.len(), |r| {
        for i in r {
            let (u, v) = edges[i];
            if u != v {
                degs[u as usize].fetch_add(1, Ordering::Relaxed);
                degs[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    let mut offsets: Vec<usize> =
        parallel_tabulate(n + 1, |i| if i < n { degs[i].load(Ordering::Relaxed) } else { 0 });
    let total = scan_exclusive(&mut offsets);
    offsets[n] = total;
    // Scatter both directions using per-vertex cursors.
    let cursors: Vec<AtomicUsize> = parallel_tabulate(n, |v| AtomicUsize::new(offsets[v]));
    let mut nbrs: Vec<VertexId> = vec![0; total];
    {
        let slots: &[AtomicU32Cell] = unsafe {
            // Safety: AtomicU32Cell is a repr(transparent) UnsafeCell view of
            // u32 slots; every slot is written exactly once (cursor
            // fetch_add hands out unique positions) before any read.
            std::slice::from_raw_parts(nbrs.as_ptr() as *const AtomicU32Cell, total)
        };
        parallel_for_chunks(edges.len(), |r| {
            for i in r {
                let (u, v) = edges[i];
                if u != v {
                    let pu = cursors[u as usize].fetch_add(1, Ordering::Relaxed);
                    slots[pu].set(v);
                    let pv = cursors[v as usize].fetch_add(1, Ordering::Relaxed);
                    slots[pv].set(u);
                }
            }
        });
    }
    // Sort each adjacency list and mark duplicates.
    let nbrs_ptr = SendMut(nbrs.as_mut_ptr());
    parallel_for(n, |v| {
        let (lo, hi) = (offsets[v], offsets[v + 1]);
        // Safety: per-vertex ranges are disjoint.
        let list = unsafe { std::slice::from_raw_parts_mut(nbrs_ptr.get().add(lo), hi - lo) };
        list.sort_unstable();
    });
    // Compute deduplicated degrees, then compact.
    let mut new_offsets: Vec<usize> = parallel_tabulate(n + 1, |v| {
        if v >= n {
            return 0;
        }
        let list = &nbrs[offsets[v]..offsets[v + 1]];
        count_unique_sorted(list)
    });
    let new_total = scan_exclusive(&mut new_offsets);
    new_offsets[n] = new_total;
    let mut out: Vec<VertexId> = vec![0; new_total];
    let out_ptr = SendMut(out.as_mut_ptr());
    parallel_for(n, |v| {
        let list = &nbrs[offsets[v]..offsets[v + 1]];
        let mut at = new_offsets[v];
        let mut prev = VertexId::MAX;
        for &x in list {
            if x != prev {
                // Safety: output ranges per vertex are disjoint.
                unsafe { out_ptr.get().add(at).write(x) };
                at += 1;
                prev = x;
            }
        }
        debug_assert_eq!(at, new_offsets[v + 1]);
    });
    CsrGraph::from_parts(new_offsets, out)
}

/// Builds a symmetric CSR graph that *preserves edge-insertion order*
/// within each adjacency list (no sorting, no deduplication; self-loops are
/// still dropped).
///
/// This mirrors graphs whose on-disk adjacency order carries meaning — the
/// paper's ClueWeb/Hyperlink inputs order neighbors by crawl locality,
/// which is exactly what makes first-k (Afforest) sampling fail
/// (Figures 22–24). The scatter runs sequentially so the order is
/// deterministic: vertex `v`'s list contains its neighbors in the order
/// the edges appear in `edges` (both directions of each pair).
pub fn build_undirected_ordered(n: usize, edges: &[Edge]) -> CsrGraph {
    let mut degs = vec![0usize; n];
    for &(u, v) in edges {
        if u != v {
            degs[u as usize] += 1;
            degs[v as usize] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for d in &degs {
        offsets.push(offsets.last().expect("nonempty") + d);
    }
    let total = offsets[n];
    let mut cursors = offsets[..n].to_vec();
    let mut nbrs: Vec<VertexId> = vec![0; total];
    for &(u, v) in edges {
        if u != v {
            nbrs[cursors[u as usize]] = v;
            cursors[u as usize] += 1;
            nbrs[cursors[v as usize]] = u;
            cursors[v as usize] += 1;
        }
    }
    CsrGraph::from_parts(offsets, nbrs)
}

fn count_unique_sorted(list: &[VertexId]) -> usize {
    let mut c = 0;
    let mut prev = VertexId::MAX;
    for &x in list {
        if x != prev {
            c += 1;
            prev = x;
        }
    }
    c
}

/// Shared-slot u32 cell for the single-writer scatter phase.
#[repr(transparent)]
struct AtomicU32Cell(std::cell::UnsafeCell<VertexId>);
unsafe impl Sync for AtomicU32Cell {}
impl AtomicU32Cell {
    #[inline]
    fn set(&self, v: VertexId) {
        // Safety: callers guarantee unique writers per slot.
        unsafe { *self.0.get() = v };
    }
}

struct SendMut<T>(*mut T);
impl<T> SendMut<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}
unsafe impl<T: Send> Send for SendMut<T> {}
unsafe impl<T: Send> Sync for SendMut<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrizes_and_sorts() {
        let g = build_undirected(4, &[(2, 1), (0, 3), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.neighbors(3), &[0]);
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = build_undirected(3, &[(0, 0), (0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn empty_edges() {
        let g = build_undirected(5, &[]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn ordered_builder_preserves_insertion_order() {
        let g = build_undirected_ordered(5, &[(0, 3), (0, 1), (2, 0), (1, 1)]);
        assert_eq!(g.neighbors(0), &[3, 1, 2]);
        assert_eq!(g.neighbors(1), &[0]); // self-loop dropped
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.num_directed_edges(), 6);
    }

    #[test]
    fn ordered_and_sorted_builders_agree_on_partition() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let edges: Vec<Edge> =
            (0..5000).map(|_| (rng.gen_range(0..800u32), rng.gen_range(0..800u32))).collect();
        let a = build_undirected(800, &edges);
        let b = build_undirected_ordered(800, &edges);
        let sa = crate::stats::component_stats(&a);
        let sb = crate::stats::component_stats(&b);
        assert_eq!(sa.num_components, sb.num_components);
        assert!(crate::stats::same_partition(&sa.labels, &sb.labels));
    }

    #[test]
    fn large_random_matches_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let n = 5000usize;
        let edges: Vec<Edge> =
            (0..60_000).map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))).collect();
        let g = build_undirected(n, &edges);
        // Reference adjacency via BTreeSet.
        let mut adj = vec![std::collections::BTreeSet::new(); n];
        for &(u, v) in &edges {
            if u != v {
                adj[u as usize].insert(v);
                adj[v as usize].insert(u);
            }
        }
        for (v, set) in adj.iter().enumerate() {
            let expect: Vec<VertexId> = set.iter().copied().collect();
            assert_eq!(g.neighbors(v as VertexId), expect.as_slice(), "vertex {v}");
        }
    }
}
