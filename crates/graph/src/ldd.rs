//! Low-diameter decomposition (Miller–Peng–Xu) with exponential start
//! times, as used by LDD sampling (Section 3.2) and the work-efficient
//! connectivity baseline of Shun et al.

use crate::types::{CsrGraph, VertexId, NO_VERTEX};
use cc_parallel::{parallel_for_chunks, parallel_tabulate, snapshot_u32};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// Result of one LDD round.
pub struct LddResult {
    /// `labels[v]` = the cluster center that claimed `v`. Every vertex is
    /// claimed (isolated vertices form their own clusters).
    pub labels: Vec<VertexId>,
    /// BFS-tree parents within each cluster (`parents[center] == center`);
    /// used for spanning-forest sampling.
    pub parents: Vec<VertexId>,
    /// Number of synchronous rounds executed.
    pub rounds: usize,
}

/// Computes a `beta`-decomposition: clusters have strong diameter
/// `O(log n / beta)` and at most `O(beta * m)` inter-cluster edges in
/// expectation.
///
/// Following the paper (and prior work it cites), sampling from the
/// exponential distribution is simulated by adding vertices as cluster
/// centers over rounds in a fixed order — `permute = false` uses vertex-id
/// order, `permute = true` a pseudorandom permutation — such that the
/// number of centers started by round `r` is `n * (1 - exp(-beta * r))`.
pub fn ldd(g: &CsrGraph, beta: f64, permute: bool, seed: u64) -> LddResult {
    assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
    let n = g.num_vertices();
    if n == 0 {
        return LddResult { labels: vec![], parents: vec![], rounds: 0 };
    }
    let order: Vec<VertexId> = if permute {
        crate::generators::random_permutation(n, seed)
    } else {
        (0..n as u32).collect()
    };
    let labels: Vec<AtomicU32> = parallel_tabulate(n, |_| AtomicU32::new(NO_VERTEX));
    let parents: Vec<AtomicU32> = parallel_tabulate(n, |_| AtomicU32::new(NO_VERTEX));

    let mut frontier: Vec<VertexId> = Vec::new();
    let mut started = 0usize; // prefix of `order` already activated
    let mut round = 0usize;
    loop {
        // Number of centers that should have started by this round. MPX
        // shifts are δ_v ~ Exp(beta), and vertex v wakes at time
        // (max δ) − δ_v, so the number awake by round r grows like
        // e^{beta * r}: the first center starts (nearly) alone and later
        // centers only claim what the early balls have not reached.
        // Round 0 starts exactly one center (floor of e^0), guaranteeing
        // that every graph contracts: a later center only forms where the
        // first ball has not arrived.
        let exponent = beta * round as f64;
        let target =
            if exponent > (n as f64).ln() + 1.0 { n } else { exponent.exp().floor() as usize }
                .clamp(1, n);
        // Activate new centers among still-unclaimed vertices.
        while started < target {
            let v = order[started];
            started += 1;
            if labels[v as usize]
                .compare_exchange(NO_VERTEX, v, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                parents[v as usize].store(v, Ordering::Relaxed);
                frontier.push(v);
            }
        }
        if frontier.is_empty() {
            if started >= n {
                break;
            }
            round += 1;
            continue;
        }
        round += 1;
        // Expand every cluster by one hop.
        let locals: Mutex<Vec<Vec<VertexId>>> = Mutex::new(Vec::new());
        parallel_for_chunks(frontier.len(), |r| {
            let mut local = Vec::new();
            for i in r.clone() {
                let u = frontier[i];
                let lu = labels[u as usize].load(Ordering::Relaxed);
                for &v in g.neighbors(u) {
                    if labels[v as usize].load(Ordering::Relaxed) == NO_VERTEX
                        && labels[v as usize]
                            .compare_exchange(NO_VERTEX, lu, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                    {
                        parents[v as usize].store(u, Ordering::Relaxed);
                        local.push(v);
                    }
                }
            }
            if !local.is_empty() {
                locals.lock().push(local);
            }
        });
        frontier = locals.into_inner().concat();
    }

    LddResult { labels: snapshot_u32(&labels), parents: snapshot_u32(&parents), rounds: round }
}

/// Counts the directed edges whose endpoints lie in different clusters.
pub fn inter_cluster_edges(g: &CsrGraph, labels: &[VertexId]) -> usize {
    use std::sync::atomic::AtomicUsize;
    let count = AtomicUsize::new(0);
    g.for_each_edge_par(|u, v| {
        if labels[u as usize] != labels[v as usize] {
            count.fetch_add(1, Ordering::Relaxed);
        }
    });
    count.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected;
    use crate::generators::{grid2d, rmat_default};

    fn check_clusters_valid(g: &CsrGraph, res: &LddResult) {
        let n = g.num_vertices();
        // Every vertex claimed; every center labels itself.
        for v in 0..n {
            let l = res.labels[v];
            assert_ne!(l, NO_VERTEX);
            assert_eq!(res.labels[l as usize], l, "center labels itself");
            let p = res.parents[v];
            assert_ne!(p, NO_VERTEX);
            if v as u32 != l {
                assert!(g.neighbors(v as u32).contains(&p), "parent is a neighbor");
                assert_eq!(res.labels[p as usize], l, "parent in same cluster");
            } else {
                assert_eq!(p, v as u32);
            }
        }
    }

    #[test]
    fn ldd_covers_grid() {
        let g = grid2d(40, 40);
        let res = ldd(&g, 0.2, false, 1);
        check_clusters_valid(&g, &res);
    }

    #[test]
    fn ldd_covers_rmat_permuted() {
        let el = rmat_default(12, 40_000, 5);
        let g = build_undirected(el.num_vertices, &el.edges);
        let res = ldd(&g, 0.2, true, 3);
        check_clusters_valid(&g, &res);
    }

    #[test]
    fn beta_one_makes_many_small_clusters() {
        // beta = 1 ramps up centers very quickly; clusters stay small.
        let g = grid2d(20, 20);
        let res = ldd(&g, 1.0, false, 1);
        check_clusters_valid(&g, &res);
        let distinct: std::collections::HashSet<_> = res.labels.iter().collect();
        assert!(distinct.len() > 40, "got {} clusters", distinct.len());
    }

    #[test]
    fn low_diameter_graph_yields_massive_cluster() {
        // The observation motivating LDD sampling (Section 3.2): one round
        // of LDD on a low-diameter graph leaves a single massive cluster.
        let el = rmat_default(13, 120_000, 3);
        let g = build_undirected(el.num_vertices, &el.edges);
        let res = ldd(&g, 0.2, false, 2);
        check_clusters_valid(&g, &res);
        let (_, count) = crate::stats::most_frequent_label(&res.labels);
        assert!(
            count * 2 > g.num_vertices(),
            "largest cluster covers {count} of {}",
            g.num_vertices()
        );
    }

    #[test]
    fn small_beta_fewer_clusters_than_large_beta() {
        let g = grid2d(60, 60);
        let few = ldd(&g, 0.05, false, 1);
        let many = ldd(&g, 0.8, false, 1);
        let d_few: std::collections::HashSet<_> = few.labels.iter().collect();
        let d_many: std::collections::HashSet<_> = many.labels.iter().collect();
        assert!(d_few.len() < d_many.len());
    }

    #[test]
    fn inter_cluster_edge_count_consistency() {
        let g = grid2d(30, 30);
        let res = ldd(&g, 0.2, false, 7);
        let ic = inter_cluster_edges(&g, &res.labels);
        // Symmetric graph → even count, bounded by total directed edges.
        assert_eq!(ic % 2, 0);
        assert!(ic <= g.num_directed_edges());
    }

    #[test]
    fn clusters_never_cross_components() {
        let g = build_undirected(7, &[(0, 1), (1, 2), (4, 5), (5, 6)]);
        let res = ldd(&g, 0.3, false, 2);
        check_clusters_valid(&g, &res);
        // Vertices in different components must have different labels.
        assert_ne!(res.labels[0], res.labels[4]);
        assert_ne!(res.labels[3], res.labels[0]);
    }
}
