//! Plain-text edge-list I/O (the de-facto interchange format of SNAP /
//! DIMACS-style datasets): one `u v` pair per line, `#` comments, blank
//! lines ignored.

use crate::types::{Edge, EdgeList};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A malformed edge-list input.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is not `u v` with integer endpoints.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::BadLine { line, content } => {
                write!(f, "malformed edge at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// The 1-based line number of a malformed line, if this is a parse
    /// (rather than I/O) failure.
    pub fn line(&self) -> Option<usize> {
        match self {
            ParseError::Io(_) => None,
            ParseError::BadLine { line, .. } => Some(*line),
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// A malformed line converts to a proper `InvalidData` [`std::io::Error`]
/// whose message carries the line number, so callers plumbing edge-list
/// loading through `io::Result` (the server's dataset loading does) keep
/// the diagnostic instead of panicking mid-parse.
impl From<ParseError> for std::io::Error {
    fn from(e: ParseError) -> Self {
        match e {
            ParseError::Io(io) => io,
            bad @ ParseError::BadLine { .. } => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, bad.to_string())
            }
        }
    }
}

/// Parses an edge list from a reader. The vertex-count bound is
/// `max(endpoint) + 1` unless `min_vertices` is larger.
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> Result<EdgeList, ParseError> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_v = 0u32;
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok?.parse().ok() };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                max_v = max_v.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(ParseError::BadLine { line: i + 1, content: trimmed.to_string() })
            }
        }
    }
    let n = if edges.is_empty() { 0 } else { max_v as usize + 1 }.max(min_vertices);
    Ok(EdgeList::new(n, edges))
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<EdgeList, ParseError> {
    read_edge_list(std::fs::File::open(path)?, 0)
}

/// Writes an edge list as text (`# n m` header then one edge per line).
pub fn write_edge_list<W: Write>(writer: W, el: &EdgeList) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", el.num_vertices, el.edges.len())?;
    for &(u, v) in &el.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes an edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(path: P, el: &EdgeList) -> std::io::Result<()> {
    write_edge_list(std::fs::File::create(path)?, el)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_with_comments() {
        let input = "# a comment\n0 1\n\n2 3\n% another\n1 2\n";
        let el = read_edge_list(input.as_bytes(), 0).expect("parses");
        assert_eq!(el.num_vertices, 4);
        assert_eq!(el.edges, vec![(0, 1), (2, 3), (1, 2)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = read_edge_list("0 1\nfoo bar\n".as_bytes(), 0).unwrap_err();
        match err {
            ParseError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn parse_rejects_truncated_line() {
        // A file cut off mid-edge: the final line has one endpoint.
        let err = read_edge_list("0 1\n2 3\n4".as_bytes(), 0).unwrap_err();
        assert_eq!(err.line(), Some(3));
        // And a lone trailing digit fragment mid-number parses as a valid
        // (if surprising) vertex id only when paired; alone it is an error.
        assert!(read_edge_list("7 8\n9\n".as_bytes(), 0).is_err());
    }

    #[test]
    fn parse_rejects_negative_and_overflow() {
        let err = read_edge_list("-1 2\n".as_bytes(), 0).unwrap_err();
        assert_eq!(err.line(), Some(1));
        let err = read_edge_list("0 1\n99999999999 3\n".as_bytes(), 0).unwrap_err();
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn parse_error_converts_to_io_error_with_line() {
        let err = read_edge_list("0 1\n\u{0} garbage\n".as_bytes(), 0).unwrap_err();
        let io_err: std::io::Error = err.into();
        assert_eq!(io_err.kind(), std::io::ErrorKind::InvalidData);
        let msg = io_err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        // Blank comment-only files stay fine through the io::Error path.
        let ok: Result<_, std::io::Error> =
            read_edge_list("# only comments\n".as_bytes(), 0).map_err(Into::into);
        assert_eq!(ok.expect("parses").num_vertices, 0);
    }

    #[test]
    fn parse_error_line_accessor() {
        let io_side = ParseError::Io(std::io::Error::other("boom"));
        assert_eq!(io_side.line(), None);
    }

    #[test]
    fn min_vertices_extends_bound() {
        let el = read_edge_list("0 1\n".as_bytes(), 10).expect("parses");
        assert_eq!(el.num_vertices, 10);
    }

    #[test]
    fn empty_input() {
        let el = read_edge_list("".as_bytes(), 0).expect("parses");
        assert!(el.is_empty());
        assert_eq!(el.num_vertices, 0);
    }

    #[test]
    fn roundtrip() {
        let el = crate::generators::rmat_default(8, 500, 3);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &el).expect("writes");
        let back = read_edge_list(buf.as_slice(), el.num_vertices).expect("parses");
        assert_eq!(back.edges, el.edges);
        assert_eq!(back.num_vertices, el.num_vertices);
    }

    #[test]
    fn file_roundtrip() {
        let el = crate::generators::rmat_default(7, 200, 9);
        let path = std::env::temp_dir().join("cc_graph_io_test.el");
        write_edge_list_file(&path, &el).expect("writes");
        let back = read_edge_list_file(&path).expect("reads");
        assert_eq!(back.edges, el.edges);
        let _ = std::fs::remove_file(&path);
    }
}
