//! Edge-list I/O: plain-text (the de-facto interchange format of SNAP /
//! DIMACS-style datasets — one `u v` pair per line, `#` comments, blank
//! lines ignored) and the [`binary`] record codec the durability layer
//! (WAL segments, label snapshots, loadgen checkpoints) frames its
//! on-disk bytes with.

use crate::types::{Edge, EdgeList};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// A malformed edge-list input.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is not `u v` with integer endpoints.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::BadLine { line, content } => {
                write!(f, "malformed edge at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// The 1-based line number of a malformed line, if this is a parse
    /// (rather than I/O) failure.
    pub fn line(&self) -> Option<usize> {
        match self {
            ParseError::Io(_) => None,
            ParseError::BadLine { line, .. } => Some(*line),
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// A malformed line converts to a proper `InvalidData` [`std::io::Error`]
/// whose message carries the line number, so callers plumbing edge-list
/// loading through `io::Result` (the server's dataset loading does) keep
/// the diagnostic instead of panicking mid-parse.
impl From<ParseError> for std::io::Error {
    fn from(e: ParseError) -> Self {
        match e {
            ParseError::Io(io) => io,
            bad @ ParseError::BadLine { .. } => {
                std::io::Error::new(std::io::ErrorKind::InvalidData, bad.to_string())
            }
        }
    }
}

/// Parses an edge list from a reader. The vertex-count bound is
/// `max(endpoint) + 1` unless `min_vertices` is larger.
pub fn read_edge_list<R: Read>(reader: R, min_vertices: usize) -> Result<EdgeList, ParseError> {
    let mut edges: Vec<Edge> = Vec::new();
    let mut max_v = 0u32;
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u32> { tok?.parse().ok() };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                max_v = max_v.max(u).max(v);
                edges.push((u, v));
            }
            _ => return Err(ParseError::BadLine { line: i + 1, content: trimmed.to_string() }),
        }
    }
    let n = if edges.is_empty() { 0 } else { max_v as usize + 1 }.max(min_vertices);
    Ok(EdgeList::new(n, edges))
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<EdgeList, ParseError> {
    read_edge_list(std::fs::File::open(path)?, 0)
}

/// Writes an edge list as text (`# n m` header then one edge per line).
pub fn write_edge_list<W: Write>(writer: W, el: &EdgeList) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", el.num_vertices, el.edges.len())?;
    for &(u, v) in &el.edges {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Writes an edge list to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(path: P, el: &EdgeList) -> std::io::Result<()> {
    write_edge_list(std::fs::File::create(path)?, el)
}

pub mod binary {
    //! The shared binary record codec: length-prefixed, CRC-checksummed
    //! frames behind an 8-byte file magic, plus the two payload layouts
    //! the durability stack stores in them (edge batches and label
    //! arrays).
    //!
    //! ## Frame layout
    //!
    //! A file is `magic (8 bytes)` followed by zero or more records, each
    //!
    //! ```text
    //! [len: u32 LE] [crc32: u32 LE] [payload: len bytes]
    //! ```
    //!
    //! where the CRC (IEEE polynomial) covers the payload only. Readers
    //! track their byte offset, so every decode failure is a typed
    //! [`CodecError`] carrying where in the file it happened — the WAL
    //! layer adds the segment path on top. Truncation mid-header or
    //! mid-payload is distinguished from checksum corruption: a torn tail
    //! (a crash mid-append) is expected and recoverable; a CRC mismatch
    //! on a complete record is not.

    use std::io::{Read, Write};

    /// Length of the file magic prefix.
    pub const MAGIC_LEN: usize = 8;

    /// Upper bound on a record payload (guards against interpreting
    /// garbage length prefixes as multi-gigabyte allocations).
    pub const MAX_PAYLOAD: u32 = 1 << 30;

    /// IEEE CRC-32 lookup table, built at compile time.
    const CRC_TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };

    /// IEEE CRC-32 of `bytes` (the checksum every record frame carries).
    pub fn crc32(bytes: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in bytes {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        !c
    }

    /// A failure decoding a binary record stream, with byte-offset
    /// context (the WAL layer wraps this with the segment path).
    #[derive(Debug)]
    pub enum CodecError {
        /// Underlying I/O failure.
        Io(std::io::Error),
        /// The file does not start with the expected magic (or is shorter
        /// than the magic itself — `found` holds what was there).
        BadMagic {
            /// The magic the reader expected.
            expected: [u8; MAGIC_LEN],
            /// The bytes actually present (may be shorter than 8).
            found: Vec<u8>,
        },
        /// The stream ended inside a record's 8-byte `len`+`crc` header.
        TruncatedHeader {
            /// Byte offset of the record start.
            offset: u64,
            /// How many header bytes were present.
            have: usize,
        },
        /// The stream ended inside a record's payload.
        TruncatedPayload {
            /// Byte offset of the record start.
            offset: u64,
            /// The payload length the header promised.
            want: u32,
            /// How many payload bytes were present.
            have: usize,
        },
        /// A complete record whose payload fails its checksum.
        CrcMismatch {
            /// Byte offset of the record start.
            offset: u64,
            /// The checksum stored in the frame.
            stored: u32,
            /// The checksum computed over the payload.
            computed: u32,
        },
        /// A length prefix exceeding [`MAX_PAYLOAD`] (garbage framing).
        OversizedRecord {
            /// Byte offset of the record start.
            offset: u64,
            /// The implausible length.
            len: u32,
        },
        /// A structurally invalid payload inside a well-framed record.
        BadPayload {
            /// Byte offset of the record start.
            offset: u64,
            /// What was wrong with it.
            reason: String,
        },
    }

    impl std::fmt::Display for CodecError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                CodecError::Io(e) => write!(f, "i/o error: {e}"),
                CodecError::BadMagic { expected, found } => {
                    write!(f, "bad file magic at offset 0: expected {expected:?}, found {found:?}")
                }
                CodecError::TruncatedHeader { offset, have } => {
                    write!(f, "truncated record header at offset {offset}: {have} of 8 bytes")
                }
                CodecError::TruncatedPayload { offset, want, have } => {
                    write!(f, "truncated record payload at offset {offset}: {have} of {want} bytes")
                }
                CodecError::CrcMismatch { offset, stored, computed } => write!(
                    f,
                    "crc mismatch at offset {offset}: stored {stored:#010x}, \
                     computed {computed:#010x}"
                ),
                CodecError::OversizedRecord { offset, len } => write!(
                    f,
                    "implausible record length {len} at offset {offset} (max {MAX_PAYLOAD})"
                ),
                CodecError::BadPayload { offset, reason } => {
                    write!(f, "bad payload at offset {offset}: {reason}")
                }
            }
        }
    }

    impl std::error::Error for CodecError {}

    impl From<std::io::Error> for CodecError {
        fn from(e: std::io::Error) -> Self {
            CodecError::Io(e)
        }
    }

    impl CodecError {
        /// The byte offset of the failing record, when known.
        pub fn offset(&self) -> Option<u64> {
            match self {
                CodecError::Io(_) | CodecError::BadMagic { .. } => None,
                CodecError::TruncatedHeader { offset, .. }
                | CodecError::TruncatedPayload { offset, .. }
                | CodecError::CrcMismatch { offset, .. }
                | CodecError::OversizedRecord { offset, .. }
                | CodecError::BadPayload { offset, .. } => Some(*offset),
            }
        }

        /// Whether this failure is a clean truncation (the bytes simply
        /// stop) rather than corruption of bytes that are present. A
        /// short magic also counts: a file can be torn before its header
        /// finished writing.
        pub fn is_truncation(&self) -> bool {
            matches!(self, CodecError::TruncatedHeader { .. } | CodecError::TruncatedPayload { .. })
                || matches!(self, CodecError::BadMagic { found, .. } if found.len() < MAGIC_LEN)
        }
    }

    /// Writes the 8-byte file magic.
    pub fn write_magic<W: Write>(w: &mut W, magic: &[u8; MAGIC_LEN]) -> std::io::Result<()> {
        w.write_all(magic)
    }

    /// Reads and verifies the 8-byte file magic. A short read yields
    /// [`CodecError::BadMagic`] with the partial bytes (which
    /// [`CodecError::is_truncation`] classifies as a torn file).
    pub fn read_magic<R: Read>(r: &mut R, expected: &[u8; MAGIC_LEN]) -> Result<(), CodecError> {
        let mut buf = Vec::with_capacity(MAGIC_LEN);
        let mut chunk = [0u8; MAGIC_LEN];
        let mut got = 0;
        while got < MAGIC_LEN {
            let k = r.read(&mut chunk[..MAGIC_LEN - got])?;
            if k == 0 {
                break;
            }
            buf.extend_from_slice(&chunk[..k]);
            got += k;
        }
        if buf.as_slice() != expected {
            return Err(CodecError::BadMagic { expected: *expected, found: buf });
        }
        Ok(())
    }

    /// Appends one framed record; returns the number of bytes written
    /// (8 + payload length).
    pub fn append_record<W: Write>(w: &mut W, payload: &[u8]) -> std::io::Result<u64> {
        assert!(payload.len() as u64 <= MAX_PAYLOAD as u64, "payload exceeds MAX_PAYLOAD");
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&crc32(payload).to_le_bytes())?;
        w.write_all(payload)?;
        Ok(8 + payload.len() as u64)
    }

    /// Reads up to `buf.len()` bytes, stopping early only at EOF; returns
    /// how many bytes were read.
    fn read_up_to<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut got = 0;
        while got < buf.len() {
            let k = r.read(&mut buf[got..])?;
            if k == 0 {
                break;
            }
            got += k;
        }
        Ok(got)
    }

    /// A cursor over the framed records of a stream, tracking byte
    /// offsets for error context.
    pub struct RecordReader<R: Read> {
        r: R,
        offset: u64,
    }

    impl<R: Read> RecordReader<R> {
        /// Wraps a reader positioned just past the file magic;
        /// `start_offset` is that position (normally [`MAGIC_LEN`]).
        pub fn new(r: R, start_offset: u64) -> Self {
            RecordReader { r, offset: start_offset }
        }

        /// The byte offset the next record would start at.
        pub fn offset(&self) -> u64 {
            self.offset
        }

        /// Reads the next record's payload; `Ok(None)` on clean EOF (the
        /// stream ends exactly at a record boundary).
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
            let at = self.offset;
            let mut header = [0u8; 8];
            let got = read_up_to(&mut self.r, &mut header)?;
            if got == 0 {
                return Ok(None);
            }
            if got < 8 {
                return Err(CodecError::TruncatedHeader { offset: at, have: got });
            }
            let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
            let stored = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
            if len > MAX_PAYLOAD {
                return Err(CodecError::OversizedRecord { offset: at, len });
            }
            let mut payload = vec![0u8; len as usize];
            let got = read_up_to(&mut self.r, &mut payload)?;
            if got < len as usize {
                return Err(CodecError::TruncatedPayload { offset: at, want: len, have: got });
            }
            let computed = crc32(&payload);
            if computed != stored {
                return Err(CodecError::CrcMismatch { offset: at, stored, computed });
            }
            self.offset += 8 + len as u64;
            Ok(Some(payload))
        }
    }

    /// A [`Read`] adapter that makes [`RecordReader`] safe on a *live
    /// socket*: transient failures (`Interrupted`, and — for sockets
    /// carrying a read timeout — `WouldBlock`/`TimedOut`) retry the read
    /// instead of surfacing mid-record, which would desynchronize the
    /// frame stream. On each transient failure `keep_going` decides
    /// whether to retry or give up (e.g. a shutdown flag flipped); giving
    /// up surfaces the original error. A read timeout therefore never
    /// tears a record: either the bytes eventually arrive, or the caller
    /// asked to stop and the whole stream is abandoned.
    pub struct RetryRead<R, F> {
        inner: R,
        keep_going: F,
    }

    impl<R: Read, F: FnMut() -> bool> RetryRead<R, F> {
        /// Wraps `inner`; `keep_going` is consulted on every transient
        /// read failure.
        pub fn new(inner: R, keep_going: F) -> Self {
            RetryRead { inner, keep_going }
        }
    }

    impl<R: Read, F: FnMut() -> bool> Read for RetryRead<R, F> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            loop {
                match self.inner.read(buf) {
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if (self.keep_going)() {
                            continue;
                        }
                        return Err(e);
                    }
                    r => return r,
                }
            }
        }
    }

    /// Encodes an edge batch payload: `epoch (u64 LE)`, `m (u32 LE)`,
    /// then `m` pairs of `u32 LE` endpoints. The WAL stores one of these
    /// per applied service batch.
    pub fn encode_edge_batch(epoch: u64, edges: &[(u32, u32)]) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + 8 * edges.len());
        out.extend_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for &(u, v) in edges {
            out.extend_from_slice(&u.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes an [`encode_edge_batch`] payload; `offset` is the record's
    /// byte offset, used only for error context.
    pub fn decode_edge_batch(
        payload: &[u8],
        offset: u64,
    ) -> Result<(u64, Vec<(u32, u32)>), CodecError> {
        let bad = |reason: String| CodecError::BadPayload { offset, reason };
        if payload.len() < 12 {
            return Err(bad(format!("edge batch header needs 12 bytes, have {}", payload.len())));
        }
        let epoch = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
        let m = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
        if payload.len() != 12 + 8 * m {
            return Err(bad(format!(
                "edge batch of {m} edges needs {} bytes, have {}",
                12 + 8 * m,
                payload.len()
            )));
        }
        let mut edges = Vec::with_capacity(m);
        for i in 0..m {
            let at = 12 + 8 * i;
            let u = u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(payload[at + 4..at + 8].try_into().expect("4 bytes"));
            edges.push((u, v));
        }
        Ok((epoch, edges))
    }

    /// Encodes a label-array payload: `epoch (u64 LE)`, `n (u64 LE)`,
    /// then `n` labels as `u32 LE`. Durable snapshots store one of these.
    pub fn encode_labels(epoch: u64, labels: &[u32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 4 * labels.len());
        out.extend_from_slice(&epoch.to_le_bytes());
        out.extend_from_slice(&(labels.len() as u64).to_le_bytes());
        for &l in labels {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Decodes an [`encode_labels`] payload.
    pub fn decode_labels(payload: &[u8], offset: u64) -> Result<(u64, Vec<u32>), CodecError> {
        let bad = |reason: String| CodecError::BadPayload { offset, reason };
        if payload.len() < 16 {
            return Err(bad(format!("label header needs 16 bytes, have {}", payload.len())));
        }
        let epoch = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
        let n = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes")) as usize;
        if payload.len() != 16 + 4 * n {
            return Err(bad(format!(
                "label array of {n} entries needs {} bytes, have {}",
                16 + 4 * n,
                payload.len()
            )));
        }
        let labels = (0..n)
            .map(|i| {
                let at = 16 + 4 * i;
                u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"))
            })
            .collect();
        Ok((epoch, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_with_comments() {
        let input = "# a comment\n0 1\n\n2 3\n% another\n1 2\n";
        let el = read_edge_list(input.as_bytes(), 0).expect("parses");
        assert_eq!(el.num_vertices, 4);
        assert_eq!(el.edges, vec![(0, 1), (2, 3), (1, 2)]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = read_edge_list("0 1\nfoo bar\n".as_bytes(), 0).unwrap_err();
        match err {
            ParseError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn parse_rejects_truncated_line() {
        // A file cut off mid-edge: the final line has one endpoint.
        let err = read_edge_list("0 1\n2 3\n4".as_bytes(), 0).unwrap_err();
        assert_eq!(err.line(), Some(3));
        // And a lone trailing digit fragment mid-number parses as a valid
        // (if surprising) vertex id only when paired; alone it is an error.
        assert!(read_edge_list("7 8\n9\n".as_bytes(), 0).is_err());
    }

    #[test]
    fn parse_rejects_negative_and_overflow() {
        let err = read_edge_list("-1 2\n".as_bytes(), 0).unwrap_err();
        assert_eq!(err.line(), Some(1));
        let err = read_edge_list("0 1\n99999999999 3\n".as_bytes(), 0).unwrap_err();
        assert_eq!(err.line(), Some(2));
    }

    #[test]
    fn parse_error_converts_to_io_error_with_line() {
        let err = read_edge_list("0 1\n\u{0} garbage\n".as_bytes(), 0).unwrap_err();
        let io_err: std::io::Error = err.into();
        assert_eq!(io_err.kind(), std::io::ErrorKind::InvalidData);
        let msg = io_err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        // Blank comment-only files stay fine through the io::Error path.
        let ok: Result<_, std::io::Error> =
            read_edge_list("# only comments\n".as_bytes(), 0).map_err(Into::into);
        assert_eq!(ok.expect("parses").num_vertices, 0);
    }

    #[test]
    fn parse_error_line_accessor() {
        let io_side = ParseError::Io(std::io::Error::other("boom"));
        assert_eq!(io_side.line(), None);
    }

    #[test]
    fn min_vertices_extends_bound() {
        let el = read_edge_list("0 1\n".as_bytes(), 10).expect("parses");
        assert_eq!(el.num_vertices, 10);
    }

    #[test]
    fn empty_input() {
        let el = read_edge_list("".as_bytes(), 0).expect("parses");
        assert!(el.is_empty());
        assert_eq!(el.num_vertices, 0);
    }

    #[test]
    fn roundtrip() {
        let el = crate::generators::rmat_default(8, 500, 3);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &el).expect("writes");
        let back = read_edge_list(buf.as_slice(), el.num_vertices).expect("parses");
        assert_eq!(back.edges, el.edges);
        assert_eq!(back.num_vertices, el.num_vertices);
    }

    const MAGIC: &[u8; 8] = b"CCTEST01";

    fn framed(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        binary::write_magic(&mut buf, MAGIC).expect("magic");
        for p in payloads {
            binary::append_record(&mut buf, p).expect("record");
        }
        buf
    }

    fn read_all(bytes: &[u8]) -> Result<Vec<Vec<u8>>, binary::CodecError> {
        let mut cur = std::io::Cursor::new(bytes);
        binary::read_magic(&mut cur, MAGIC)?;
        let mut r = binary::RecordReader::new(cur, binary::MAGIC_LEN as u64);
        let mut out = Vec::new();
        while let Some(p) = r.next()? {
            out.push(p);
        }
        Ok(out)
    }

    #[test]
    fn binary_roundtrip_and_offsets() {
        let buf = framed(&[b"hello", b"", b"world!"]);
        let got = read_all(&buf).expect("reads");
        assert_eq!(got, vec![b"hello".to_vec(), Vec::new(), b"world!".to_vec()]);
        // Offsets advance by 8 + len per record.
        let mut cur = std::io::Cursor::new(&buf[8..]);
        let mut r = binary::RecordReader::new(&mut cur, 8);
        r.next().expect("rec").expect("some");
        assert_eq!(r.offset(), 8 + 8 + 5);
    }

    #[test]
    fn binary_bit_flipped_crc_is_typed_with_offset() {
        let mut buf = framed(&[b"aaaa", b"bbbb"]);
        // Flip one bit in the second record's stored CRC (offset 8 magic
        // + 12 first record + 4 len).
        let second = 8 + (8 + 4);
        buf[second + 4] ^= 0x01;
        let err = read_all(&buf).unwrap_err();
        match &err {
            binary::CodecError::CrcMismatch { offset, stored, computed } => {
                assert_eq!(*offset, second as u64);
                assert_ne!(stored, computed);
            }
            other => panic!("expected CrcMismatch, got {other}"),
        }
        assert!(!err.is_truncation());
        assert_eq!(err.offset(), Some(second as u64));
        let msg = err.to_string();
        assert!(msg.contains(&format!("offset {second}")), "{msg}");
    }

    #[test]
    fn binary_flipped_payload_bit_is_caught_too() {
        let mut buf = framed(&[b"payload-bytes"]);
        let last = buf.len() - 1;
        buf[last] ^= 0x80;
        assert!(matches!(read_all(&buf).unwrap_err(), binary::CodecError::CrcMismatch { .. }));
    }

    #[test]
    fn binary_truncated_length_prefix_is_torn() {
        let buf = framed(&[b"aaaa", b"bbbb"]);
        // Cut inside the second record's 8-byte header.
        let cut = 8 + (8 + 4) + 3;
        let err = read_all(&buf[..cut]).unwrap_err();
        match &err {
            binary::CodecError::TruncatedHeader { offset, have } => {
                assert_eq!(*offset, (8 + 8 + 4) as u64);
                assert_eq!(*have, 3);
            }
            other => panic!("expected TruncatedHeader, got {other}"),
        }
        assert!(err.is_truncation());
        // Cut inside the payload instead.
        let err = read_all(&buf[..8 + 8 + 2]).unwrap_err();
        assert!(matches!(err, binary::CodecError::TruncatedPayload { have: 2, want: 4, .. }));
        assert!(err.is_truncation());
    }

    #[test]
    fn binary_garbage_header_is_typed() {
        let mut buf = framed(&[b"aaaa"]);
        buf[0..8].copy_from_slice(b"GARBAGE!");
        let err = read_all(&buf).unwrap_err();
        match &err {
            binary::CodecError::BadMagic { expected, found } => {
                assert_eq!(expected, MAGIC);
                assert_eq!(found.as_slice(), b"GARBAGE!");
            }
            other => panic!("expected BadMagic, got {other}"),
        }
        // A full-but-wrong magic is corruption, not truncation...
        assert!(!err.is_truncation());
        // ...while a file torn inside the magic is a truncation.
        let err = read_all(&framed(&[])[..5]).unwrap_err();
        assert!(matches!(&err, binary::CodecError::BadMagic { found, .. } if found.len() == 5));
        assert!(err.is_truncation());
    }

    /// A reader that interleaves timeout failures between real bytes —
    /// the shape of a socket with a read timeout delivering a record in
    /// dribbles.
    struct Dribble {
        bytes: Vec<u8>,
        at: usize,
        /// Fail with `WouldBlock` before every real byte.
        block_next: bool,
    }

    impl std::io::Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.at >= self.bytes.len() {
                return Ok(0);
            }
            if self.block_next {
                self.block_next = false;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "not yet"));
            }
            self.block_next = true;
            buf[0] = self.bytes[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn retry_read_keeps_records_whole_across_timeouts() {
        let buf = framed(&[b"hello", b"streamed"]);
        let dribble = Dribble { bytes: buf, at: 0, block_next: true };
        // keep_going => true: every timeout retries, the stream decodes
        // exactly as if it had arrived in one piece.
        let mut r = binary::RetryRead::new(dribble, || true);
        binary::read_magic(&mut r, MAGIC).expect("magic survives timeouts");
        let mut records = binary::RecordReader::new(r, binary::MAGIC_LEN as u64);
        assert_eq!(records.next().expect("rec").expect("some"), b"hello".to_vec());
        assert_eq!(records.next().expect("rec").expect("some"), b"streamed".to_vec());
        assert!(records.next().expect("eof").is_none());
    }

    #[test]
    fn retry_read_surfaces_timeout_when_asked_to_stop() {
        let buf = framed(&[b"hello"]);
        let dribble = Dribble { bytes: buf, at: 0, block_next: true };
        // keep_going flips false after a few retries (a shutdown flag).
        let mut budget = 3;
        let mut r = binary::RetryRead::new(dribble, move || {
            budget -= 1;
            budget > 0
        });
        let err = binary::read_magic(&mut r, MAGIC).unwrap_err();
        match err {
            binary::CodecError::Io(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock)
            }
            other => panic!("expected Io(WouldBlock), got {other}"),
        }
    }

    #[test]
    fn binary_oversized_length_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        binary::write_magic(&mut buf, MAGIC).expect("magic");
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_all(&buf).unwrap_err();
        assert!(matches!(err, binary::CodecError::OversizedRecord { len: u32::MAX, .. }));
    }

    #[test]
    fn binary_edge_batch_payload_roundtrip() {
        let edges = vec![(0u32, 1u32), (7, 3), (u32::MAX, 0)];
        let payload = binary::encode_edge_batch(42, &edges);
        let (epoch, back) = binary::decode_edge_batch(&payload, 0).expect("decodes");
        assert_eq!(epoch, 42);
        assert_eq!(back, edges);
        // Empty batches (query-only epochs) roundtrip too.
        let (epoch, back) =
            binary::decode_edge_batch(&binary::encode_edge_batch(7, &[]), 0).expect("decodes");
        assert_eq!((epoch, back.len()), (7, 0));
        // Structurally short payloads are BadPayload with offset context.
        let err = binary::decode_edge_batch(&payload[..payload.len() - 1], 99).unwrap_err();
        assert!(matches!(err, binary::CodecError::BadPayload { offset: 99, .. }), "{err}");
        let err = binary::decode_edge_batch(&[0u8; 3], 5).unwrap_err();
        assert!(err.to_string().contains("offset 5"), "{err}");
    }

    #[test]
    fn binary_labels_payload_roundtrip() {
        let labels: Vec<u32> = (0..100).map(|i| i / 3).collect();
        let payload = binary::encode_labels(9, &labels);
        let (epoch, back) = binary::decode_labels(&payload, 0).expect("decodes");
        assert_eq!(epoch, 9);
        assert_eq!(back, labels);
        let err = binary::decode_labels(&payload[..20], 3).unwrap_err();
        assert!(matches!(err, binary::CodecError::BadPayload { offset: 3, .. }));
    }

    #[test]
    fn crc32_known_vectors() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(binary::crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(binary::crc32(b""), 0);
    }

    #[test]
    fn file_roundtrip() {
        let el = crate::generators::rmat_default(7, 200, 9);
        let path = std::env::temp_dir().join("cc_graph_io_test.el");
        write_edge_list_file(&path, &el).expect("writes");
        let back = read_edge_list_file(&path).expect("reads");
        assert_eq!(back.edges, el.edges);
        let _ = std::fs::remove_file(&path);
    }
}
