//! Byte-compressed CSR: variable-length delta encoding of adjacency lists,
//! the Ligra+-style substrate the paper relies on to fit 128B-edge graphs in
//! memory (Section 3.6, "Graph Compression").
//!
//! Each vertex's neighbor list is difference-encoded: the first neighbor
//! as a zigzag delta from the vertex id, the rest as zigzag deltas from the
//! previous neighbor (signed, so insertion-ordered adjacency compresses
//! too). Deltas are LEB128 varints. Vertices decode independently, so
//! parallelism is per-vertex ("blocked" in the paper's terms; our blocks
//! are vertices, which at laptop scale gives the same parallel decode
//! structure).

use crate::types::{CsrGraph, VertexId};
use cc_parallel::{parallel_for, parallel_tabulate, scan_exclusive};

/// A compressed, immutable view of an undirected CSR graph.
pub struct CompressedCsr {
    byte_offsets: Vec<usize>,
    degrees: Vec<u32>,
    data: Vec<u8>,
}

#[inline]
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

#[inline]
fn varint_len(mut x: u64) -> usize {
    let mut len = 1;
    while x >= 0x80 {
        x >>= 7;
        len += 1;
    }
    len
}

#[inline]
fn write_varint(buf: &mut [u8], mut at: usize, mut x: u64) -> usize {
    while x >= 0x80 {
        buf[at] = (x as u8) | 0x80;
        x >>= 7;
        at += 1;
    }
    buf[at] = x as u8;
    at + 1
}

#[inline]
fn read_varint(buf: &[u8], at: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0;
    loop {
        let b = buf[*at];
        *at += 1;
        x |= u64::from(b & 0x7F) << shift;
        if b < 0x80 {
            return x;
        }
        shift += 7;
    }
}

impl CompressedCsr {
    /// Compresses a CSR graph. Two-pass: size computation, scan, encode.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let degrees: Vec<u32> = parallel_tabulate(n, |v| g.degree(v as VertexId) as u32);
        let mut byte_offsets: Vec<usize> = parallel_tabulate(n + 1, |v| {
            if v >= n {
                return 0;
            }
            let nbrs = g.neighbors(v as VertexId);
            let mut sz = 0usize;
            if let Some((&first, rest)) = nbrs.split_first() {
                sz += varint_len(zigzag(i64::from(first) - v as i64));
                let mut prev = first;
                for &w in rest {
                    sz += varint_len(zigzag(i64::from(w) - i64::from(prev)));
                    prev = w;
                }
            }
            sz
        });
        let total = scan_exclusive(&mut byte_offsets);
        byte_offsets[n] = total;
        let mut data = vec![0u8; total];
        let ptr = DataPtr(data.as_mut_ptr());
        let offs = &byte_offsets;
        parallel_for(n, |v| {
            let nbrs = g.neighbors(v as VertexId);
            if nbrs.is_empty() {
                return;
            }
            // Safety: per-vertex byte ranges are disjoint by construction.
            let out = unsafe {
                std::slice::from_raw_parts_mut(ptr.get().add(offs[v]), offs[v + 1] - offs[v])
            };
            let mut at = 0usize;
            let first = nbrs[0];
            at = write_varint(out, at, zigzag(i64::from(first) - v as i64));
            let mut prev = first;
            for &w in &nbrs[1..] {
                at = write_varint(out, at, zigzag(i64::from(w) - i64::from(prev)));
                prev = w;
            }
            debug_assert_eq!(at, out.len());
        });
        CompressedCsr { byte_offsets, degrees, data }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Compressed size in bytes (the metric "330 GB instead of 900 GB" in
    /// Section 3.6 is about).
    pub fn compressed_bytes(&self) -> usize {
        self.data.len()
    }

    /// Decodes `v`'s neighbors into `out` (cleared first).
    pub fn decode_neighbors(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let deg = self.degrees[v as usize] as usize;
        if deg == 0 {
            return;
        }
        let mut at = self.byte_offsets[v as usize];
        let first = (v as i64 + unzigzag(read_varint(&self.data, &mut at))) as VertexId;
        out.push(first);
        let mut prev = first;
        for _ in 1..deg {
            prev = (i64::from(prev) + unzigzag(read_varint(&self.data, &mut at))) as VertexId;
            out.push(prev);
        }
        debug_assert_eq!(at, self.byte_offsets[v as usize + 1]);
    }

    /// Applies `f(u, v)` to every directed edge, decoding in parallel with
    /// one scratch buffer per chunk.
    pub fn for_each_edge_par<F>(&self, f: F)
    where
        F: Fn(VertexId, VertexId) + Sync,
    {
        let n = self.num_vertices();
        cc_parallel::parallel_for_chunks(n, |r| {
            let mut buf = Vec::new();
            for v in r {
                self.decode_neighbors(v as VertexId, &mut buf);
                for &w in &buf {
                    f(v as VertexId, w);
                }
            }
        });
    }
}

struct DataPtr(*mut u8);
impl DataPtr {
    fn get(&self) -> *mut u8 {
        self.0
    }
}
unsafe impl Send for DataPtr {}
unsafe impl Sync for DataPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected;
    use crate::generators::{grid2d, rmat_default};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn varint_roundtrip() {
        let vals = [0u64, 1, 127, 128, 300, 1 << 20, u64::from(u32::MAX)];
        for &v in &vals {
            let mut buf = vec![0u8; 10];
            let end = write_varint(&mut buf, 0, v);
            assert_eq!(end, varint_len(v));
            let mut at = 0;
            assert_eq!(read_varint(&buf, &mut at), v);
            assert_eq!(at, end);
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for &v in &[0i64, 1, -1, 63, -64, 1 << 30, -(1 << 30)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn compress_roundtrip_grid() {
        let g = grid2d(30, 40);
        let c = CompressedCsr::from_csr(&g);
        let mut buf = Vec::new();
        for v in 0..g.num_vertices() as VertexId {
            c.decode_neighbors(v, &mut buf);
            assert_eq!(buf.as_slice(), g.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn compress_roundtrip_rmat() {
        let el = rmat_default(12, 30_000, 11);
        let g = build_undirected(el.num_vertices, &el.edges);
        let c = CompressedCsr::from_csr(&g);
        let mut buf = Vec::new();
        for v in 0..g.num_vertices() as VertexId {
            c.decode_neighbors(v, &mut buf);
            assert_eq!(buf.as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn compression_shrinks_local_graphs() {
        // Grid neighbors are nearby ids → one-byte deltas.
        let g = grid2d(100, 100);
        let c = CompressedCsr::from_csr(&g);
        let raw = g.num_directed_edges() * std::mem::size_of::<VertexId>();
        assert!(c.compressed_bytes() < raw / 2, "{} vs {}", c.compressed_bytes(), raw);
    }

    #[test]
    fn parallel_edge_map_matches() {
        let g = grid2d(50, 50);
        let c = CompressedCsr::from_csr(&g);
        let count = AtomicUsize::new(0);
        c.for_each_edge_par(|u, v| {
            assert!(g.neighbors(u).contains(&v));
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), g.num_directed_edges());
    }

    #[test]
    fn empty_and_isolated() {
        let g = build_undirected(3, &[]);
        let c = CompressedCsr::from_csr(&g);
        let mut buf = vec![99];
        c.decode_neighbors(1, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(c.compressed_bytes(), 0);
    }
}
