//! Synthetic graph generators.
//!
//! These provide the laptop-scale analogs of the paper's datasets (see
//! DESIGN.md §2): RMAT and Barabási–Albert for the social networks used in
//! the streaming experiments (Section 4.4 uses exactly these two families),
//! a 2-D grid standing in for the high-diameter `road_usa`, and a
//! "clustered web" generator that plants the adversarial vertex-ordering
//! locality that makes first-k (Afforest) sampling fail on ClueWeb and the
//! Hyperlink graphs (Figures 22–24).

use crate::builder::build_undirected;
use crate::types::{CsrGraph, Edge, EdgeList, VertexId};
use cc_parallel::parallel_tabulate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RMAT recursive-matrix edge sampler with partition probabilities
/// `(a, b, c)` (and `d = 1 - a - b - c`). `scale` gives `n = 2^scale`.
///
/// The paper's streaming experiments use `(a, b, c) = (0.5, 0.1, 0.1)`.
pub fn rmat(scale: u32, num_edges: usize, a: f64, b: f64, c: f64, seed: u64) -> EdgeList {
    assert!(scale <= 31, "u32 vertex ids");
    assert!(a + b + c <= 1.0 + 1e-9);
    let n = 1usize << scale;
    let edges: Vec<Edge> = parallel_tabulate(num_edges, |i| {
        let mut rng =
            cc_parallel::SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen_f64();
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        (u, v)
    });
    EdgeList::new(n, edges)
}

/// RMAT with the paper's streaming parameters `(0.5, 0.1, 0.1)`.
pub fn rmat_default(scale: u32, num_edges: usize, seed: u64) -> EdgeList {
    rmat(scale, num_edges, 0.5, 0.1, 0.1, seed)
}

/// Barabási–Albert preferential attachment: each new vertex draws `d`
/// endpoints; with probability 1/2 a uniform previous vertex, otherwise an
/// endpoint of a previous edge (degree-proportional).
pub fn barabasi_albert(n: usize, d: usize, seed: u64) -> EdgeList {
    assert!(n >= 2 && d >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(n * d);
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * d);
    edges.push((0, 1));
    endpoints.extend_from_slice(&[0, 1]);
    for v in 2..n as VertexId {
        for _ in 0..d {
            let target = if rng.gen_bool(0.5) {
                rng.gen_range(0..v)
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            edges.push((v, target));
            endpoints.push(v);
            endpoints.push(target);
        }
    }
    EdgeList::new(n, edges)
}

/// Erdős–Rényi G(n, m): `m` uniformly random edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> EdgeList {
    let edges: Vec<Edge> = parallel_tabulate(m, |i| {
        let mut rng =
            cc_parallel::SplitMix64::new(seed ^ (i as u64).wrapping_mul(0xD1B54A32D192ED03));
        (rng.gen_range(n) as u32, rng.gen_range(n) as u32)
    });
    EdgeList::new(n, edges)
}

/// 4-neighbor 2-D grid: the high-diameter, low-degree analog of a road
/// network (`road_usa` in the paper).
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as VertexId;
            if c + 1 < cols {
                edges.push((v, v + 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols as VertexId));
            }
        }
    }
    build_undirected(n, &edges)
}

/// Path graph `0 - 1 - ... - (n-1)` (diameter `n - 1`).
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<Edge> = (0..n.saturating_sub(1)).map(|i| (i as u32, i as u32 + 1)).collect();
    build_undirected(n, &edges)
}

/// Cycle on `n` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3);
    let mut edges: Vec<Edge> = (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect();
    edges.push((n as u32 - 1, 0));
    build_undirected(n, &edges)
}

/// Star with center 0 and `n - 1` leaves.
pub fn star(n: usize) -> CsrGraph {
    let edges: Vec<Edge> = (1..n as u32).map(|v| (0, v)).collect();
    build_undirected(n, &edges)
}

/// Complete graph on `n` vertices (small n only).
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    build_undirected(n, &edges)
}

/// Disjoint union of edge lists: relabels each input into its own id range.
/// Used to plant multi-component structure (the Hyperlink graphs have
/// hundreds of millions of small components next to one massive one).
pub fn disjoint_union(parts: &[EdgeList]) -> EdgeList {
    let mut offset = 0u32;
    let mut edges = Vec::new();
    for p in parts {
        edges.extend(p.edges.iter().map(|&(u, v)| (u + offset, v + offset)));
        offset += p.num_vertices as u32;
    }
    EdgeList::new(offset as usize, edges)
}

/// Clustered "web" generator with adversarial adjacency-ordering locality.
///
/// `num_blocks` dense blocks of `block_size` contiguous-id vertices; each
/// vertex gets `intra_deg` random intra-block edges, and each vertex
/// independently gets one edge to a uniformly random vertex in another
/// block with probability `inter_prob`. *All intra-block edges precede all
/// inter-block edges in the list*, so when built with
/// [`crate::builder::build_undirected_ordered`] every adjacency list leads
/// with intra-block neighbors — like the crawl-ordered ClueWeb/Hyperlink
/// inputs. A first-k (Afforest) sample then selects only intra-block edges
/// and discovers nothing beyond the blocks, while randomized k-out escapes
/// — reproducing the behaviour of Figures 22–24.
pub fn clustered_web(
    num_blocks: usize,
    block_size: usize,
    intra_deg: usize,
    inter_prob: f64,
    seed: u64,
) -> EdgeList {
    assert!(block_size >= 2 && num_blocks >= 2);
    let n = num_blocks * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(n * (intra_deg + 1));
    // Phase 1: intra-block edges (come first in every adjacency list).
    for b in 0..num_blocks {
        let base = (b * block_size) as u32;
        for i in 0..block_size {
            let v = base + i as u32;
            // Ring edge keeps each block connected regardless of the random
            // draws below.
            edges.push((v, base + ((i + 1) % block_size) as u32));
            for _ in 0..intra_deg {
                let w = base + rng.gen_range(0..block_size) as u32;
                if w != v {
                    edges.push((v, w));
                }
            }
        }
    }
    // Phase 2: sparse inter-block edges (land at the tail of both
    // endpoints' adjacency lists).
    for b in 0..num_blocks {
        let base = b * block_size;
        for i in 0..block_size {
            let v = (base + i) as u32;
            if rng.gen_bool(inter_prob) {
                let tb = (b + rng.gen_range(1..num_blocks)) % num_blocks;
                let w = (tb * block_size + rng.gen_range(0..block_size)) as u32;
                edges.push((v, w));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// Applies a pseudorandom relabeling to an edge list (destroys vertex
/// ordering locality). Used to contrast "good" and "bad" orderings.
pub fn shuffle_labels(el: &EdgeList, seed: u64) -> EdgeList {
    let n = el.num_vertices;
    let perm = random_permutation(n, seed);
    let edges = el.edges.iter().map(|&(u, v)| (perm[u as usize], perm[v as usize])).collect();
    EdgeList::new(n, edges)
}

/// Fisher–Yates permutation of `0..n` from `seed`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<VertexId> = (0..n as u32).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::component_stats;

    #[test]
    fn rmat_bounds_and_determinism() {
        let a = rmat_default(10, 5000, 42);
        let b = rmat_default(10, 5000, 42);
        assert_eq!(a, b);
        assert!(a.edges.iter().all(|&(u, v)| u < 1024 && v < 1024));
    }

    #[test]
    fn rmat_different_seeds_differ() {
        let a = rmat_default(10, 1000, 1);
        let b = rmat_default(10, 1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn ba_is_connected() {
        let el = barabasi_albert(2000, 3, 9);
        let g = build_undirected(el.num_vertices, &el.edges);
        let st = component_stats(&g);
        assert_eq!(st.num_components, 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(10, 15);
        assert_eq!(g.num_vertices(), 150);
        // Interior vertex has degree 4.
        assert_eq!(g.degree(16), 4);
        // Corner has degree 2.
        assert_eq!(g.degree(0), 2);
        assert_eq!(component_stats(&g).num_components, 1);
    }

    #[test]
    fn path_cycle_star_complete() {
        assert_eq!(path(10).num_edges(), 9);
        assert_eq!(cycle(10).num_edges(), 10);
        assert_eq!(star(10).num_edges(), 9);
        assert_eq!(complete(6).num_edges(), 15);
    }

    #[test]
    fn disjoint_union_relabels() {
        let a = EdgeList::new(3, vec![(0, 1)]);
        let b = EdgeList::new(2, vec![(0, 1)]);
        let u = disjoint_union(&[a, b]);
        assert_eq!(u.num_vertices, 5);
        assert_eq!(u.edges, vec![(0, 1), (3, 4)]);
    }

    #[test]
    fn clustered_web_blocks_are_connected() {
        let el = clustered_web(20, 16, 2, 0.5, 3);
        let g = build_undirected(el.num_vertices, &el.edges);
        let st = component_stats(&g);
        // With inter_prob 0.5 per vertex the blocks almost surely chain up.
        assert!(st.num_components <= 3, "components: {}", st.num_components);
    }

    #[test]
    fn clustered_web_ordered_adjacency_leads_with_intra_block() {
        let el = clustered_web(10, 16, 3, 0.5, 7);
        let g = crate::builder::build_undirected_ordered(el.num_vertices, &el.edges);
        // For every vertex, the first neighbor is in the same block.
        for v in 0..g.num_vertices() {
            let block = v / 16;
            if let Some(&first) = g.neighbors(v as u32).first() {
                assert_eq!(first as usize / 16, block, "vertex {v}");
            }
        }
    }

    #[test]
    fn permutation_is_bijection() {
        let p = random_permutation(1000, 5);
        let mut seen = vec![false; 1000];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }
}
