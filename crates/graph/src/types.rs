//! Core graph types: COO edge lists and the CSR (compressed sparse row)
//! format used by every algorithm in the workspace.

use cc_parallel::{parallel_for_chunks, parallel_sum};
use std::ops::Range;

/// Vertex identifier. Graphs in this workspace are bounded by `u32` ids,
/// matching the paper's experimental scale per machine word economy.
pub type VertexId = u32;

/// Sentinel meaning "no vertex" (used for unvisited markers, absent forest
/// edges, etc.).
pub const NO_VERTEX: VertexId = u32::MAX;

/// An edge as an ordered pair of endpoints.
pub type Edge = (VertexId, VertexId);

/// A coordinate-format (COO) edge list together with the vertex-count bound.
///
/// This is the "Data Format: COO" input of Figure 1 and the representation
/// of streaming batches in Section 4.4.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices; all edge endpoints are `< num_vertices`.
    pub num_vertices: usize,
    /// The edges. Undirected semantics: `(u, v)` connects both directions.
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an edge list, validating endpoints in debug builds.
    pub fn new(num_vertices: usize, edges: Vec<Edge>) -> Self {
        debug_assert!(edges
            .iter()
            .all(|&(u, v)| (u as usize) < num_vertices && (v as usize) < num_vertices));
        EdgeList { num_vertices, edges }
    }

    /// Number of (undirected) edges in the list.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// An undirected graph in compressed sparse row format.
///
/// The representation is *symmetric*: every undirected edge `{u, v}` is
/// stored as both `(u, v)` and `(v, u)`. Adjacency lists are sorted and
/// duplicate-free, and self-loops are removed at construction.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds from raw parts. `offsets` has length `n + 1` with
    /// `offsets[n] == neighbors.len()`; callers must guarantee the symmetric
    /// sorted-dedup invariant documented on the type (the builder in
    /// [`crate::builder`] does).
    pub(crate) fn from_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().expect("nonempty"), neighbors.len());
        CsrGraph { offsets, neighbors }
    }

    /// An edgeless graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph { offsets: vec![0; n + 1], neighbors: Vec::new() }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *directed* edges stored (twice the undirected edge count).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted, duplicate-free neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// The CSR offset array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat neighbor array.
    #[inline]
    pub fn neighbor_array(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Edge-balanced parallel iteration: invokes `f(u, v)` for every
    /// directed edge `(u, v)`, partitioning work by *edge* count so that
    /// skewed degree distributions stay balanced.
    pub fn for_each_edge_par<F>(&self, f: F)
    where
        F: Fn(VertexId, VertexId) + Sync,
    {
        let m = self.neighbors.len();
        let offsets = &self.offsets;
        let neighbors = &self.neighbors;
        parallel_for_chunks(m, |r: Range<usize>| {
            // Locate the source vertex of the first edge in this chunk.
            let mut u = match offsets.binary_search(&r.start) {
                Ok(mut i) => {
                    // Skip zero-degree vertices that share this offset.
                    while i + 1 < offsets.len() && offsets[i + 1] == r.start {
                        i += 1;
                    }
                    i
                }
                Err(i) => i - 1,
            };
            for e in r {
                while offsets[u + 1] <= e {
                    u += 1;
                }
                f(u as VertexId, neighbors[e]);
            }
        });
    }

    /// Edge-balanced parallel iteration restricted to edges whose source
    /// satisfies `keep`. Used by the finish phase to skip the frequent
    /// component.
    pub fn for_each_edge_par_filtered<K, F>(&self, keep: K, f: F)
    where
        K: Fn(VertexId) -> bool + Sync,
        F: Fn(VertexId, VertexId) + Sync,
    {
        self.for_each_edge_par(|u, v| {
            if keep(u) {
                f(u, v);
            }
        });
    }

    /// Edge-balanced parallel iteration with per-chunk context: `make_ctx`
    /// builds a worker-local accumulator, `f` processes each directed edge
    /// against it, and `drain` observes it once per chunk. Keeps hot loops
    /// free of shared-counter contention (e.g. path-length statistics).
    pub fn for_each_edge_par_ctx<C, M, F, D>(&self, make_ctx: M, f: F, drain: D)
    where
        M: Fn() -> C + Sync,
        F: Fn(&mut C, VertexId, VertexId) + Sync,
        D: Fn(C) + Sync,
    {
        let m = self.neighbors.len();
        let offsets = &self.offsets;
        let neighbors = &self.neighbors;
        parallel_for_chunks(m, |r: Range<usize>| {
            let mut ctx = make_ctx();
            let mut u = match offsets.binary_search(&r.start) {
                Ok(mut i) => {
                    while i + 1 < offsets.len() && offsets[i + 1] == r.start {
                        i += 1;
                    }
                    i
                }
                Err(i) => i - 1,
            };
            for e in r {
                while offsets[u + 1] <= e {
                    u += 1;
                }
                f(&mut ctx, u as VertexId, neighbors[e]);
            }
            drain(ctx);
        });
    }

    /// Sum of degrees computed in parallel; sanity primitive used by tests.
    pub fn degree_sum(&self) -> usize {
        parallel_sum(self.num_vertices(), |v| self.degree(v as VertexId))
    }

    /// Converts the graph to a COO edge list with each undirected edge
    /// appearing once (`u < v`).
    pub fn to_edge_list(&self) -> EdgeList {
        let mut edges = Vec::with_capacity(self.num_edges());
        for u in 0..self.num_vertices() as VertexId {
            for &v in self.neighbors(u) {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        EdgeList::new(self.num_vertices(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny() -> CsrGraph {
        build_undirected(6, &[(0, 1), (1, 2), (3, 4), (0, 2)])
    }

    #[test]
    fn basic_accessors() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_directed_edges(), 8);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.degree(5), 0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn for_each_edge_par_visits_all_directed_edges() {
        let g = crate::generators::grid2d(40, 40);
        let count = AtomicUsize::new(0);
        g.for_each_edge_par(|u, v| {
            assert!(g.neighbors(u).contains(&v));
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), g.num_directed_edges());
    }

    #[test]
    fn for_each_edge_par_handles_isolated_vertices() {
        // Vertices 0 and 2 isolated; edges only among 1,3.
        let g = build_undirected(5, &[(1, 3)]);
        let count = AtomicUsize::new(0);
        g.for_each_edge_par(|_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn to_edge_list_roundtrip() {
        let g = tiny();
        let el = g.to_edge_list();
        let g2 = build_undirected(el.num_vertices, &el.edges);
        assert_eq!(g.offsets(), g2.offsets());
        assert_eq!(g.neighbor_array(), g2.neighbor_array());
    }
}
