//! The MapEdges / GatherEdges baseline primitives of Appendix C.4.1
//! (Table 8): empirical lower bounds on the cost of any connectivity
//! algorithm that must touch every edge.

use crate::types::{CsrGraph, VertexId};
use cc_parallel::parallel_tabulate;

/// MapEdges: maps over all vertices in parallel, reducing a constant over
/// each vertex's incident edges (i.e., computes degrees after reading every
/// edge). Models "read and process the graph, store one output per vertex".
pub fn map_edges(g: &CsrGraph) -> Vec<u64> {
    parallel_tabulate(g.num_vertices(), |v| {
        let mut acc = 0u64;
        for &w in g.neighbors(v as VertexId) {
            // Consume the neighbor id so the read is not optimized away.
            acc += u64::from(w & 1) + 1;
        }
        acc
    })
}

/// GatherEdges: like [`map_edges`] but performs an indirect read into
/// `data` at each neighbor — the access pattern every parent-array
/// connectivity algorithm must pay for at least once per edge.
pub fn gather_edges(g: &CsrGraph, data: &[u32]) -> Vec<u64> {
    assert_eq!(data.len(), g.num_vertices());
    parallel_tabulate(g.num_vertices(), |v| {
        let mut acc = 0u64;
        for &w in g.neighbors(v as VertexId) {
            acc += u64::from(data[w as usize]);
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::grid2d;

    #[test]
    fn map_edges_counts_degrees() {
        let g = grid2d(10, 10);
        let out = map_edges(&g);
        let total: u64 = out.iter().sum();
        // acc adds 1 or 2 per edge; must be between m and 2m directed edges.
        assert!(total >= g.num_directed_edges() as u64);
        assert!(total <= 2 * g.num_directed_edges() as u64);
    }

    #[test]
    fn gather_edges_sums_neighbor_data() {
        let g = crate::builder::build_undirected(4, &[(0, 1), (0, 2), (2, 3)]);
        let data = vec![10, 20, 30, 40];
        let out = gather_edges(&g, &data);
        assert_eq!(out[0], 50); // neighbors 1,2
        assert_eq!(out[1], 10);
        assert_eq!(out[2], 50); // neighbors 0,3
        assert_eq!(out[3], 30);
    }
}
