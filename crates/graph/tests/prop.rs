//! Property tests for the graph substrate: builder vs reference adjacency,
//! compression roundtrips, I/O roundtrips, and BFS distances vs a
//! sequential reference.

use cc_graph::builder::{build_undirected, build_undirected_ordered};
use cc_graph::compressed::CompressedCsr;
use cc_graph::{Edge, EdgeList, NO_VERTEX};
use proptest::prelude::*;
use std::collections::{BTreeSet, VecDeque};

fn arb_edges() -> impl Strategy<Value = (usize, Vec<Edge>)> {
    (2usize..150).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..400))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builder_matches_reference((n, edges) in arb_edges()) {
        let g = build_undirected(n, &edges);
        let mut adj = vec![BTreeSet::new(); n];
        for &(u, v) in &edges {
            if u != v {
                adj[u as usize].insert(v);
                adj[v as usize].insert(u);
            }
        }
        for (v, set) in adj.iter().enumerate() {
            let expect: Vec<u32> = set.iter().copied().collect();
            prop_assert_eq!(g.neighbors(v as u32), expect.as_slice());
        }
    }

    #[test]
    fn ordered_builder_same_multiset((n, edges) in arb_edges()) {
        let g = build_undirected_ordered(n, &edges);
        let expect_m: usize = edges.iter().filter(|&&(u, v)| u != v).count() * 2;
        prop_assert_eq!(g.num_directed_edges(), expect_m);
        // Each direction present.
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(g.neighbors(u).contains(&v));
                prop_assert!(g.neighbors(v).contains(&u));
            }
        }
    }

    #[test]
    fn compression_roundtrip((n, edges) in arb_edges()) {
        let g = build_undirected(n, &edges);
        let c = CompressedCsr::from_csr(&g);
        let mut buf = Vec::new();
        for v in 0..n as u32 {
            c.decode_neighbors(v, &mut buf);
            prop_assert_eq!(buf.as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn compression_roundtrip_unsorted((n, edges) in arb_edges()) {
        // Signed-delta encoding must handle insertion-ordered adjacency.
        let g = build_undirected_ordered(n, &edges);
        let c = CompressedCsr::from_csr(&g);
        let mut buf = Vec::new();
        for v in 0..n as u32 {
            c.decode_neighbors(v, &mut buf);
            prop_assert_eq!(buf.as_slice(), g.neighbors(v));
        }
    }

    #[test]
    fn io_roundtrip((n, edges) in arb_edges()) {
        let el = EdgeList::new(n, edges);
        let mut buf = Vec::new();
        cc_graph::io::write_edge_list(&mut buf, &el).expect("write");
        let back = cc_graph::io::read_edge_list(buf.as_slice(), n).expect("read");
        prop_assert_eq!(back.edges, el.edges);
    }

    #[test]
    fn bfs_distances_match_sequential((n, edges) in arb_edges(), src_raw in any::<u32>()) {
        let g = build_undirected(n, &edges);
        let src = src_raw % n as u32;
        let res = cc_graph::bfs::bfs(&g, src);
        // Sequential reference distances.
        let mut dist = vec![usize::MAX; n];
        let mut q = VecDeque::new();
        dist[src as usize] = 0;
        q.push_back(src);
        while let Some(u) = q.pop_front() {
            for &w in g.neighbors(u) {
                if dist[w as usize] == usize::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    q.push_back(w);
                }
            }
        }
        for v in 0..n {
            let reached = res.parents[v] != NO_VERTEX;
            prop_assert_eq!(reached, dist[v] != usize::MAX, "reachability of {}", v);
            if reached && v as u32 != src {
                // Parent must be exactly one level closer.
                let p = res.parents[v] as usize;
                prop_assert_eq!(dist[p] + 1, dist[v], "parent level of {}", v);
            }
        }
    }

    #[test]
    fn ldd_clusters_are_connected_subsets((n, edges) in arb_edges(), beta in 1u32..10) {
        let g = build_undirected(n, &edges);
        let res = cc_graph::ldd::ldd(&g, beta as f64 / 10.0, true, 7);
        // Walking parents from any vertex stays in its cluster and reaches
        // the center.
        for v in 0..n as u32 {
            let mut cur = v;
            let mut steps = 0;
            while res.parents[cur as usize] != cur {
                prop_assert_eq!(res.labels[cur as usize], res.labels[v as usize]);
                cur = res.parents[cur as usize];
                steps += 1;
                prop_assert!(steps <= n, "parent chain cycle");
            }
            prop_assert_eq!(cur, res.labels[v as usize]);
        }
    }
}
