//! Parallel prefix sums (scan) and pack/filter primitives.
//!
//! These are the classic PRAM building blocks used throughout the graph
//! substrate: CSR construction, frontier compaction, and the sampling
//! statistics all reduce to scans and packs.

use crate::ops::{parallel_for_chunks_grained, SendPtr};
use crate::pool::global_pool;
use parking_lot::Mutex;

/// In-place exclusive prefix sum over `data`, returning the total.
///
/// `data[i]` becomes `sum(data[0..i])`; the grand total is returned. Uses a
/// two-pass blocked algorithm: per-chunk sums, a sequential scan over chunk
/// sums, then a per-chunk local scan.
pub fn scan_exclusive(data: &mut [usize]) -> usize {
    let n = data.len();
    if n == 0 {
        return 0;
    }
    let threads = global_pool().threads();
    if n < 4096 || threads == 1 {
        let mut acc = 0usize;
        for x in data.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        return acc;
    }
    let grain = n.div_ceil(threads * 4);
    let nchunks = n.div_ceil(grain);
    // Pass 1: chunk sums.
    let sums: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::with_capacity(nchunks));
    {
        let data_ref: &[usize] = data;
        parallel_for_chunks_grained(n, grain, |r| {
            let s: usize = data_ref[r.clone()].iter().sum();
            sums.lock().push((r.start / grain, s));
        });
    }
    let mut sums = sums.into_inner();
    sums.sort_unstable_by_key(|&(c, _)| c);
    debug_assert_eq!(sums.len(), nchunks);
    // Sequential scan over chunk sums.
    let mut offsets = vec![0usize; nchunks];
    let mut acc = 0usize;
    for (c, s) in sums {
        offsets[c] = acc;
        acc += s;
    }
    let total = acc;
    // Pass 2: local scans.
    {
        let offsets_ref: &[usize] = &offsets;
        let ptr = SendPtr::new(data.as_mut_ptr());
        parallel_for_chunks_grained(n, grain, move |r| {
            let mut acc = offsets_ref[r.start / grain];
            for i in r {
                // Safety: chunks are disjoint.
                unsafe {
                    let slot = ptr.get().add(i);
                    let v = *slot;
                    *slot = acc;
                    acc += v;
                }
            }
        });
    }
    total
}

/// Returns the indices `i in 0..n` with `pred(i)`, in increasing order.
pub fn pack_indices<P>(n: usize, pred: P) -> Vec<u32>
where
    P: Fn(usize) -> bool + Sync,
{
    pack_map(n, |i| if pred(i) { Some(i as u32) } else { None })
}

/// Order-preserving parallel filter-map over `0..n`.
///
/// Returns `f(i)` for every `i` where `f(i)` is `Some`, ordered by `i`.
pub fn pack_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> Option<T> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = global_pool().threads();
    if n < 4096 || threads == 1 {
        return (0..n).filter_map(f).collect();
    }
    let grain = n.div_ceil(threads * 8);
    let nchunks = n.div_ceil(grain);
    // Pass 1: count survivors per chunk.
    let mut counts = vec![0usize; nchunks];
    {
        let counts_ptr = SendPtr::new(counts.as_mut_ptr());
        let f = &f;
        parallel_for_chunks_grained(n, grain, move |r| {
            let c = r.clone().filter(|&i| f(i).is_some()).count();
            // Safety: one writer per chunk slot.
            unsafe { counts_ptr.get().add(r.start / grain).write(c) };
        });
    }
    let total = scan_exclusive(&mut counts);
    // Pass 2: write survivors at their offsets.
    let mut out: Vec<T> = Vec::with_capacity(total);
    {
        let out_ptr = SendPtr::new(out.as_mut_ptr());
        let counts_ref: &[usize] = &counts;
        let f = &f;
        parallel_for_chunks_grained(n, grain, move |r| {
            let mut at = counts_ref[r.start / grain];
            for i in r {
                if let Some(v) = f(i) {
                    // Safety: disjoint output ranges per chunk, within capacity.
                    unsafe { out_ptr.get().add(at).write(v) };
                    at += 1;
                }
            }
        });
    }
    // Safety: exactly `total` slots initialized.
    unsafe { out.set_len(total) };
    out
}

/// Parallel flatten: given per-index output counts, computes offsets and
/// invokes `fill(i, offset)` so callers can write variable-sized output for
/// each index into a shared buffer. Returns the offsets array (exclusive
/// scan of counts) and the total size.
pub fn flatten_offsets<C>(n: usize, count: C) -> (Vec<usize>, usize)
where
    C: Fn(usize) -> usize + Sync,
{
    let mut counts: Vec<usize> = crate::ops::parallel_tabulate(n, &count);
    let total = scan_exclusive(&mut counts);
    (counts, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_matches_sequential_small() {
        let mut a: Vec<usize> = (0..100).map(|i| i % 7).collect();
        let mut b = a.clone();
        let total = scan_exclusive(&mut a);
        let mut acc = 0;
        for x in b.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        assert_eq!(a, b);
        assert_eq!(total, acc);
    }

    #[test]
    fn scan_matches_sequential_large() {
        let n = 1_000_000;
        let mut a: Vec<usize> = (0..n).map(|i| (i * 31) % 11).collect();
        let expect_total: usize = a.iter().sum();
        let b = a.clone();
        let total = scan_exclusive(&mut a);
        assert_eq!(total, expect_total);
        // Spot-check prefix property.
        for &i in &[0usize, 1, 4095, 4096, 12345, n - 1] {
            let expect: usize = b[..i].iter().sum();
            assert_eq!(a[i], expect, "prefix at {i}");
        }
    }

    #[test]
    fn scan_empty() {
        let mut a: Vec<usize> = vec![];
        assert_eq!(scan_exclusive(&mut a), 0);
    }

    #[test]
    fn pack_preserves_order() {
        let n = 300_000;
        let got = pack_indices(n, |i| i % 17 == 3);
        let expect: Vec<u32> = (0..n as u32).filter(|i| i % 17 == 3).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pack_all_and_none() {
        assert_eq!(pack_indices(10_000, |_| false), Vec::<u32>::new());
        let all = pack_indices(10_000, |_| true);
        assert_eq!(all.len(), 10_000);
        assert_eq!(all[9999], 9999);
    }

    #[test]
    fn pack_map_transforms() {
        let got = pack_map(100_000, |i| (i % 1000 == 0).then_some(i * 2));
        let expect: Vec<usize> = (0..100_000).filter(|i| i % 1000 == 0).map(|i| i * 2).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn flatten_offsets_totals() {
        let (offs, total) = flatten_offsets(1000, |i| i % 5);
        assert_eq!(total, (0..1000).map(|i| i % 5).sum::<usize>());
        assert_eq!(offs[0], 0);
        assert_eq!(offs[1], 0);
        assert_eq!(offs[2], 1);
    }
}
