//! Parallel histogram / counting primitives.

use crate::ops::{parallel_for_chunks, parallel_tabulate};
use crate::scan::scan_exclusive;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of buckets below which per-thread local histograms (merged at the
/// end) beat shared atomic counters.
const LOCAL_HIST_MAX_BUCKETS: usize = 1 << 14;

/// Counts key occurrences: `out[b] = |{ i : key(i) == b }|` for
/// `b in 0..buckets`. Keys outside `0..buckets` are a logic error and panic
/// in debug builds (they are ignored in release).
pub fn histogram<K>(n: usize, buckets: usize, key: K) -> Vec<usize>
where
    K: Fn(usize) -> u32 + Sync,
{
    if buckets == 0 || n == 0 {
        return vec![0; buckets];
    }
    if buckets <= LOCAL_HIST_MAX_BUCKETS {
        let partials: Mutex<Vec<usize>> = Mutex::new(vec![0; buckets]);
        parallel_for_chunks(n, |r| {
            let mut local = vec![0usize; buckets];
            for i in r {
                let b = key(i) as usize;
                debug_assert!(b < buckets, "key {b} out of range {buckets}");
                if b < buckets {
                    local[b] += 1;
                }
            }
            let mut g = partials.lock();
            for (dst, src) in g.iter_mut().zip(local) {
                *dst += src;
            }
        });
        partials.into_inner()
    } else {
        let counts: Vec<AtomicUsize> = parallel_tabulate(buckets, |_| AtomicUsize::new(0));
        parallel_for_chunks(n, |r| {
            for i in r {
                let b = key(i) as usize;
                debug_assert!(b < buckets, "key {b} out of range {buckets}");
                if b < buckets {
                    counts[b].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        parallel_tabulate(buckets, |b| counts[b].load(Ordering::Relaxed))
    }
}

/// Stable-by-bucket parallel counting sort. Returns a permutation `perm`
/// such that iterating `perm` visits all indices with key 0, then key 1,
/// etc. (order within a bucket is unspecified), along with the exclusive
/// bucket offsets (length `buckets + 1`).
pub fn counting_sort_indices<K>(n: usize, buckets: usize, key: K) -> (Vec<u32>, Vec<usize>)
where
    K: Fn(usize) -> u32 + Sync,
{
    let mut counts = histogram(n, buckets, &key);
    counts.push(0);
    let total = scan_exclusive(&mut counts);
    debug_assert_eq!(total, n);
    *counts.last_mut().expect("nonempty") = n;
    let cursors: Vec<AtomicUsize> =
        parallel_tabulate(buckets, |b| AtomicUsize::new(counts[b]));
    let perm_slots: Vec<AtomicUsize> = parallel_tabulate(n, |_| AtomicUsize::new(0));
    parallel_for_chunks(n, |r| {
        for i in r {
            let b = key(i) as usize;
            let at = cursors[b].fetch_add(1, Ordering::Relaxed);
            perm_slots[at].store(i, Ordering::Relaxed);
        }
    });
    let perm = parallel_tabulate(n, |i| perm_slots[i].load(Ordering::Relaxed) as u32);
    (perm, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small_buckets() {
        let n = 200_000;
        let h = histogram(n, 7, |i| (i % 7) as u32);
        for (b, &c) in h.iter().enumerate() {
            let expect = (0..n).filter(|i| i % 7 == b).count();
            assert_eq!(c, expect);
        }
    }

    #[test]
    fn histogram_large_buckets() {
        let n = 100_000;
        let buckets = 1 << 16;
        let h = histogram(n, buckets, |i| (i % buckets) as u32);
        assert_eq!(h.iter().sum::<usize>(), n);
        assert_eq!(h[5], (0..n).filter(|i| i % buckets == 5).count());
    }

    #[test]
    fn histogram_empty() {
        assert_eq!(histogram(0, 4, |_| 0), vec![0; 4]);
        assert!(histogram(10, 0, |_| 0).is_empty());
    }

    #[test]
    fn counting_sort_groups_by_key() {
        let n = 100_000;
        let keys: Vec<u32> = (0..n).map(|i| ((i * 7919) % 101) as u32).collect();
        let (perm, offs) = counting_sort_indices(n, 101, |i| keys[i]);
        assert_eq!(perm.len(), n);
        assert_eq!(offs.len(), 102);
        // Every bucket range contains exactly the indices with that key.
        let mut seen = vec![false; n];
        for b in 0..101 {
            for &i in &perm[offs[b]..offs[b + 1]] {
                assert_eq!(keys[i as usize], b as u32);
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
