//! Parallel histogram / counting primitives, plus a concurrent
//! log-bucketed latency histogram with percentile extraction
//! ([`LatencyHist`]) used by the service layer and benches.

use crate::ops::{parallel_for_chunks, parallel_tabulate};
use crate::scan::scan_exclusive;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of buckets below which per-thread local histograms (merged at the
/// end) beat shared atomic counters.
const LOCAL_HIST_MAX_BUCKETS: usize = 1 << 14;

/// Counts key occurrences: `out[b] = |{ i : key(i) == b }|` for
/// `b in 0..buckets`. Keys outside `0..buckets` are a logic error and panic
/// in debug builds (they are ignored in release).
pub fn histogram<K>(n: usize, buckets: usize, key: K) -> Vec<usize>
where
    K: Fn(usize) -> u32 + Sync,
{
    if buckets == 0 || n == 0 {
        return vec![0; buckets];
    }
    if buckets <= LOCAL_HIST_MAX_BUCKETS {
        let partials: Mutex<Vec<usize>> = Mutex::new(vec![0; buckets]);
        parallel_for_chunks(n, |r| {
            let mut local = vec![0usize; buckets];
            for i in r {
                let b = key(i) as usize;
                debug_assert!(b < buckets, "key {b} out of range {buckets}");
                if b < buckets {
                    local[b] += 1;
                }
            }
            let mut g = partials.lock();
            for (dst, src) in g.iter_mut().zip(local) {
                *dst += src;
            }
        });
        partials.into_inner()
    } else {
        let counts: Vec<AtomicUsize> = parallel_tabulate(buckets, |_| AtomicUsize::new(0));
        parallel_for_chunks(n, |r| {
            for i in r {
                let b = key(i) as usize;
                debug_assert!(b < buckets, "key {b} out of range {buckets}");
                if b < buckets {
                    counts[b].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        parallel_tabulate(buckets, |b| counts[b].load(Ordering::Relaxed))
    }
}

/// Stable-by-bucket parallel counting sort. Returns a permutation `perm`
/// such that iterating `perm` visits all indices with key 0, then key 1,
/// etc. (order within a bucket is unspecified), along with the exclusive
/// bucket offsets (length `buckets + 1`).
pub fn counting_sort_indices<K>(n: usize, buckets: usize, key: K) -> (Vec<u32>, Vec<usize>)
where
    K: Fn(usize) -> u32 + Sync,
{
    let mut counts = histogram(n, buckets, &key);
    counts.push(0);
    let total = scan_exclusive(&mut counts);
    debug_assert_eq!(total, n);
    *counts.last_mut().expect("nonempty") = n;
    let cursors: Vec<AtomicUsize> = parallel_tabulate(buckets, |b| AtomicUsize::new(counts[b]));
    let perm_slots: Vec<AtomicUsize> = parallel_tabulate(n, |_| AtomicUsize::new(0));
    parallel_for_chunks(n, |r| {
        for i in r {
            let b = key(i) as usize;
            let at = cursors[b].fetch_add(1, Ordering::Relaxed);
            perm_slots[at].store(i, Ordering::Relaxed);
        }
    });
    let perm = parallel_tabulate(n, |i| perm_slots[i].load(Ordering::Relaxed) as u32);
    (perm, counts)
}

/// Sub-bucket resolution bits of [`LatencyHist`]: each power-of-two value
/// range is split into `2^SUB_BITS` linear sub-buckets, bounding the
/// relative quantization error by `2^-SUB_BITS` (~3% at 5 bits).
const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS;
/// Bucket count covering the full `u64` value range at `SUB_BITS`
/// resolution (values below `2^SUB_BITS` are recorded exactly).
const HIST_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) << SUB_BITS;

/// Maps a value to its bucket index (monotone in the value).
#[inline]
fn latency_bucket(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) & (SUBS - 1);
    (((exp - SUB_BITS + 1) as u64 * SUBS) | sub) as usize
}

/// Lower bound of a bucket's value range (inverse of [`latency_bucket`]).
#[inline]
fn bucket_lower(idx: usize) -> u64 {
    let group = idx as u64 / SUBS;
    let sub = idx as u64 & (SUBS - 1);
    if group <= 1 {
        return idx as u64;
    }
    let exp = (group - 1) + SUB_BITS as u64;
    (1u64 << exp) | (sub << (exp - SUB_BITS as u64))
}

/// A concurrent, log-bucketed histogram of `u64` samples (nanoseconds by
/// convention) with cheap percentile extraction.
///
/// Recording is wait-free (one relaxed `fetch_add` per sample plus min/max
/// maintenance), so many threads — e.g. the service's batch former and its
/// protocol threads — can record into one shared instance. Values are
/// quantized to ~3% relative error; `min`/`max` are tracked exactly.
///
/// The `Display` implementation prints a one-line summary with count, mean,
/// p50/p90/p99/p999 and max, formatted as durations:
///
/// ```
/// use cc_parallel::hist::LatencyHist;
/// let h = LatencyHist::new();
/// for i in 1..=1000u64 {
///     h.record(i * 1_000); // 1µs .. 1ms
/// }
/// assert_eq!(h.count(), 1000);
/// let line = h.to_string();
/// assert!(line.contains("p50=") && line.contains("p999="));
/// ```
pub struct LatencyHist {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (nanoseconds by convention).
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of the same value in O(1) (used when every
    /// operation of a batch shares the batch's completion latency).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[latency_bucket(v)].fetch_add(n, Ordering::Relaxed);
        self.total.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`Duration`] sample in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.load(Ordering::Relaxed).checked_div(self.count()).unwrap_or(0)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of the recorded samples, e.g.
    /// `quantile(0.99)` for p99. Returns the lower bound of the bucket
    /// holding the target rank, clamped to the exact recorded min/max; 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        // Snapshot min/max once; a concurrent `record_n` updates counts
        // before min/max, so the pair can be transiently inverted — fall
        // back to the raw bucket bound rather than a panicking clamp.
        let (lo, hi) = (self.min.load(Ordering::Relaxed), self.max());
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                let b = bucket_lower(i);
                return if lo <= hi { b.clamp(lo, hi) } else { b };
            }
        }
        hi
    }

    /// p50 / p90 / p99 / p999 in one call (one pass per percentile).
    pub fn percentiles(&self) -> [u64; 4] {
        [self.quantile(0.50), self.quantile(0.90), self.quantile(0.99), self.quantile(0.999)]
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&self, other: &LatencyHist) {
        for (dst, src) in self.counts.iter().zip(&other.counts) {
            let c = src.load(Ordering::Relaxed);
            if c > 0 {
                dst.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.total.fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Formats nanoseconds with a human time unit (`ns`/`µs`/`ms`/`s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

impl std::fmt::Display for LatencyHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let [p50, p90, p99, p999] = self.percentiles();
        write!(
            f,
            "n={} mean={} p50={} p90={} p99={} p999={} max={}",
            self.count(),
            fmt_ns(self.mean()),
            fmt_ns(p50),
            fmt_ns(p90),
            fmt_ns(p99),
            fmt_ns(p999),
            fmt_ns(self.max())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small_buckets() {
        let n = 200_000;
        let h = histogram(n, 7, |i| (i % 7) as u32);
        for (b, &c) in h.iter().enumerate() {
            let expect = (0..n).filter(|i| i % 7 == b).count();
            assert_eq!(c, expect);
        }
    }

    #[test]
    fn histogram_large_buckets() {
        let n = 100_000;
        let buckets = 1 << 16;
        let h = histogram(n, buckets, |i| (i % buckets) as u32);
        assert_eq!(h.iter().sum::<usize>(), n);
        assert_eq!(h[5], (0..n).filter(|i| i % buckets == 5).count());
    }

    #[test]
    fn histogram_empty() {
        assert_eq!(histogram(0, 4, |_| 0), vec![0; 4]);
        assert!(histogram(10, 0, |_| 0).is_empty());
    }

    #[test]
    fn latency_bucket_monotone_and_invertible() {
        let values: Vec<u64> =
            (0..60).flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift) + off)).collect();
        let mut sorted = values;
        sorted.sort_unstable();
        let mut prev = 0usize;
        for v in sorted {
            let b = latency_bucket(v);
            assert!(b >= prev, "bucket not monotone at {v}");
            prev = b;
            assert!(bucket_lower(b) <= v, "lower bound above value at {v}");
        }
        // Small values are exact.
        for v in 0..SUBS * 2 {
            assert_eq!(bucket_lower(latency_bucket(v)), v);
        }
    }

    #[test]
    fn latency_percentiles_uniform() {
        let h = LatencyHist::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000);
        }
        assert_eq!(h.count(), 10_000);
        let [p50, p90, p99, p999] = h.percentiles();
        // ~3% quantization error plus rank rounding.
        let close = |got: u64, want: u64| (got as f64 - want as f64).abs() / (want as f64) < 0.08;
        assert!(close(p50, 5_000_000), "p50={p50}");
        assert!(close(p90, 9_000_000), "p90={p90}");
        assert!(close(p99, 9_900_000), "p99={p99}");
        assert!(close(p999, 9_990_000), "p999={p999}");
        assert_eq!(h.max(), 10_000_000);
        assert!(h.quantile(0.0) >= 1000);
        assert!(close(h.quantile(1.0), 10_000_000));
    }

    #[test]
    fn latency_record_n_and_merge() {
        let a = LatencyHist::new();
        let b = LatencyHist::new();
        a.record_n(100, 50);
        b.record_n(1_000_000, 50);
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert!(a.quantile(0.25) <= 104);
        let p99 = a.quantile(0.99);
        assert!(p99 >= 970_000, "p99={p99}");
        let line = a.to_string();
        assert!(line.starts_with("n=100 "), "{line}");
        assert!(line.contains("max=1.00ms"), "{line}");
    }

    #[test]
    fn latency_empty_is_benign() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        assert!(h.to_string().contains("n=0"));
    }

    #[test]
    fn latency_empty_percentiles_and_display_are_stable() {
        let h = LatencyHist::new();
        assert_eq!(h.percentiles(), [0, 0, 0, 0]);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.max(), 0);
        // The empty rendering is pinned verbatim: STATS exposes it and
        // scripts parse the key=value pairs.
        assert_eq!(h.to_string(), "n=0 mean=0ns p50=0ns p90=0ns p99=0ns p999=0ns max=0ns");
        // Zero-count records are no-ops, not 0-valued samples.
        h.record_n(500, 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn latency_single_value_display_is_exact_and_stable() {
        let h = LatencyHist::new();
        h.record_n(10, 100);
        // Values below 2^SUB_BITS land in exact buckets, so every
        // percentile reproduces the sample and the line is deterministic.
        assert_eq!(h.to_string(), "n=100 mean=10ns p50=10ns p90=10ns p99=10ns p999=10ns max=10ns");
    }

    #[test]
    fn latency_top_bucket_saturates() {
        let h = LatencyHist::new();
        // u64::MAX maps into the last bucket — no index overflow — and
        // the overflowing Duration conversion clamps instead of panicking.
        assert_eq!(latency_bucket(u64::MAX), HIST_BUCKETS - 1);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record_duration(Duration::from_secs(u64::MAX / 4)); // > u64::MAX ns
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        // Quantiles stay within the recorded range (bucket lower bounds
        // are clamped to the exact min/max).
        assert!(h.quantile(1.0) >= u64::MAX - 1);
        assert!(h.quantile(0.5) >= u64::MAX - 1);
        // The saturated sum must render, not panic (mean is clamped
        // arithmetic over wrapped atomics — only stability is promised).
        let _ = h.mean();
        assert!(h.to_string().starts_with("n=3 "));
    }

    #[test]
    fn counting_sort_groups_by_key() {
        let n = 100_000;
        let keys: Vec<u32> = (0..n).map(|i| ((i * 7919) % 101) as u32).collect();
        let (perm, offs) = counting_sort_indices(n, 101, |i| keys[i]);
        assert_eq!(perm.len(), n);
        assert_eq!(offs.len(), 102);
        // Every bucket range contains exactly the indices with that key.
        let mut seen = vec![false; n];
        for b in 0..101 {
            for &i in &perm[offs[b]..offs[b + 1]] {
                assert_eq!(keys[i as usize], b as u32);
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
