//! Atomic helpers: `write_min`/`write_max` (priority updates) and small
//! conveniences over atomic slices.
//!
//! `write_min` is the primitive the paper calls `writeMin` (Shun et al.,
//! "Reducing Contention Through Priority Updates"): atomically replace the
//! value at a location with `val` iff `val` is smaller, reporting whether a
//! replacement happened.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Atomically sets `*loc = val` if `val < *loc`. Returns `true` iff this
/// call performed the update.
#[inline]
pub fn write_min_u32(loc: &AtomicU32, val: u32) -> bool {
    let mut cur = loc.load(Ordering::Relaxed);
    while val < cur {
        match loc.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically sets `*loc = val` if `val > *loc`. Returns `true` iff this
/// call performed the update.
#[inline]
pub fn write_max_u32(loc: &AtomicU32, val: u32) -> bool {
    let mut cur = loc.load(Ordering::Relaxed);
    while val > cur {
        match loc.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// `write_min` over `u64` locations.
#[inline]
pub fn write_min_u64(loc: &AtomicU64, val: u64) -> bool {
    let mut cur = loc.load(Ordering::Relaxed);
    while val < cur {
        match loc.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Allocates a boxed slice of `n` atomics initialized via `f(i)`.
pub fn atomic_u32_slice(n: usize, f: impl Fn(usize) -> u32 + Sync) -> Box<[AtomicU32]> {
    crate::ops::parallel_tabulate(n, |i| AtomicU32::new(f(i))).into_boxed_slice()
}

/// Snapshots an atomic slice into a plain vector (relaxed loads).
pub fn snapshot_u32(slice: &[AtomicU32]) -> Vec<u32> {
    crate::ops::parallel_tabulate(slice.len(), |i| slice[i].load(Ordering::Relaxed))
}

/// Allocates a zeroed boxed slice of `AtomicUsize`.
pub fn atomic_usize_slice(n: usize) -> Box<[AtomicUsize]> {
    crate::ops::parallel_tabulate(n, |_| AtomicUsize::new(0)).into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::parallel_for;

    #[test]
    fn write_min_takes_global_min() {
        let loc = AtomicU32::new(u32::MAX);
        parallel_for(100_000, |i| {
            write_min_u32(&loc, (i as u32).wrapping_mul(2654435761) % 1_000_003);
        });
        let expect = (0..100_000u32).map(|i| i.wrapping_mul(2654435761) % 1_000_003).min().unwrap();
        assert_eq!(loc.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn write_min_reports_update() {
        let loc = AtomicU32::new(10);
        assert!(!write_min_u32(&loc, 10));
        assert!(!write_min_u32(&loc, 11));
        assert!(write_min_u32(&loc, 9));
        assert_eq!(loc.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn write_max_takes_global_max() {
        let loc = AtomicU32::new(0);
        parallel_for(50_000, |i| {
            write_max_u32(&loc, (i as u32) ^ 0xABCD);
        });
        let expect = (0..50_000u32).map(|i| i ^ 0xABCD).max().unwrap();
        assert_eq!(loc.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn snapshot_roundtrip() {
        let s = atomic_u32_slice(1000, |i| i as u32 * 3);
        let v = snapshot_u32(&s);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 * 3));
    }
}
