//! # cc-parallel
//!
//! The parallelism substrate for the `connectit-rs` workspace: a persistent
//! broadcast fork-join pool (standing in for the ConnectIt authors'
//! Cilk-like scheduler) plus the PRAM-style sequence primitives the graph
//! algorithms are written against: `parallel_for`, reductions, prefix sums,
//! packs, histograms, and `write_min`-style priority updates.
//!
//! Thread count defaults to the machine; set `CC_NUM_THREADS` to override
//! (e.g. `CC_NUM_THREADS=1` for deterministic sequential debugging).
//!
//! ```
//! let squares = cc_parallel::parallel_tabulate(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod hist;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod scan;

pub use atomic::{
    atomic_u32_slice, atomic_usize_slice, snapshot_u32, write_max_u32, write_min_u32, write_min_u64,
};
pub use hist::{counting_sort_indices, histogram, LatencyHist};
pub use ops::{
    parallel_count, parallel_for, parallel_for_chunks, parallel_for_chunks_grained,
    parallel_for_grained, parallel_max_index, parallel_reduce, parallel_sum, parallel_tabulate,
};
pub use pool::{global_pool, num_threads, ThreadPool};
pub use rng::SplitMix64;
pub use scan::{flatten_offsets, pack_indices, pack_map, scan_exclusive};
