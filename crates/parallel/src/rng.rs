//! SplitMix64: a tiny, statistically solid, constant-time-seedable PRNG for
//! per-element randomness in parallel loops (per-vertex k-out draws, RMAT
//! bit choices). Cryptographic-strength generators cost more to *seed* than
//! an entire sampling step at these granularities.

/// SplitMix64 generator (Steele, Lea, Flood 2014).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed; distinct seeds give independent
    /// streams for practical purposes.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (Lemire's multiply-shift; bound > 0).
    #[inline]
    pub fn gen_range(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(10);
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SplitMix64::new(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
