//! A broadcast fork-join thread pool.
//!
//! The ConnectIt paper runs on the authors' Cilk-like work-stealing
//! scheduler. All of the algorithms in this repository only require flat
//! data-parallel loops with *dynamic load balancing* (skewed degree
//! distributions make static partitioning insufficient). We therefore use a
//! simpler, easier-to-verify design: a persistent pool of workers that all
//! participate in one *broadcast job* at a time. A parallel loop splits its
//! iteration space into many more chunks than threads and every participant
//! claims chunks from a shared atomic counter until the space is exhausted.
//!
//! Deviation from the paper (documented in DESIGN.md): there are no
//! per-worker deques. At the chunk granularities used here the shared
//! counter is uncontended, and the behaviour (greedy dynamic scheduling) is
//! the same.
//!
//! Dispatch latency matters for round-based algorithms (BFS, LDD,
//! Liu–Tarjan run hundreds of loops), so workers spin briefly on an atomic
//! epoch before parking on a condvar, and the broadcaster spins briefly on
//! the completion counter before blocking; parked waits use timeouts as a
//! lost-wakeup backstop.
//!
//! Nested calls: a `parallel_for` issued from inside a worker thread runs
//! sequentially. The algorithms in this workspace are written as flat loops
//! (edge-balanced where degree skew matters), so nesting only occurs by
//! accident and degrades gracefully instead of deadlocking.

use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

thread_local! {
    /// Set while a pool worker (or a caller participating in a broadcast)
    /// is executing job code; used to serialize nested parallel calls.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Returns true when the current thread is already executing inside a
/// parallel region (worker thread or participating caller).
pub fn in_parallel_region() -> bool {
    IN_PARALLEL.with(|f| f.get())
}

/// Lifetime-erased reference to the per-epoch job. The job closure is
/// "participate until there is no work left"; it must be safe to call from
/// many threads concurrently and must return only when this thread can do
/// no more work for the job.
type JobRef = &'static (dyn Fn() + Sync);

/// Wrapper making the erased job reference transferable across threads.
///
/// Safety: the broadcasting thread keeps the referent alive (it blocks
/// until every worker reports done), and the referent is `Sync`.
#[derive(Clone, Copy)]
struct SendJob(JobRef);
unsafe impl Send for SendJob {}

/// Spin iterations before a worker parks waiting for a new epoch.
const WORKER_SPINS: usize = 4_000;
/// Spin iterations before the broadcaster parks waiting for completion.
const DONE_SPINS: usize = 10_000;

struct Shared {
    /// Bumped for every broadcast; workers run each epoch exactly once.
    /// The job slot is written *before* the bump (release/acquire pairing).
    epoch: AtomicU64,
    /// Number of workers that have finished the current epoch.
    done: AtomicUsize,
    job: Mutex<Option<SendJob>>,
    work_mx: Mutex<()>,
    work_cv: Condvar,
    done_mx: Mutex<()>,
    done_cv: Condvar,
    shutdown: AtomicBool,
    workers: usize,
    /// Guards against concurrent broadcasts from multiple non-worker
    /// threads (the loser runs its job sequentially).
    broadcasting: AtomicBool,
}

/// A persistent fork-join pool. Most users never construct one directly and
/// instead go through [`crate::parallel_for`] and friends, which use the
/// process-global pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `threads` total participants (the broadcasting
    /// thread counts as one, so `threads - 1` workers are spawned).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            job: Mutex::new(None),
            work_mx: Mutex::new(()),
            work_cv: Condvar::new(),
            done_mx: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            workers: threads - 1,
            broadcasting: AtomicBool::new(false),
        });
        let handles = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn cc-parallel worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Total number of participants (workers + broadcaster).
    pub fn threads(&self) -> usize {
        self.shared.workers + 1
    }

    /// Runs `job` on every pool thread and the calling thread, returning
    /// once all of them have finished. `job` must itself coordinate work
    /// division (see [`crate::parallel_for`] for the chunk-claiming loop).
    ///
    /// If called from inside a parallel region, or while another thread is
    /// broadcasting, `job` simply runs on the calling thread alone: the
    /// chunk-claiming loop then consumes everything sequentially, which is
    /// correct, just not parallel.
    pub fn broadcast(&self, job: &(dyn Fn() + Sync)) {
        let sh = &*self.shared;
        if sh.workers == 0 || in_parallel_region() {
            run_marked(job);
            return;
        }
        if sh
            .broadcasting
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            run_marked(job);
            return;
        }
        // Erase the lifetime of `job`. Safe because this function does not
        // return until every worker has reported completion of this epoch,
        // so no worker can observe the reference after the borrow ends.
        let job_ref: SendJob =
            SendJob(unsafe { std::mem::transmute::<&(dyn Fn() + Sync), JobRef>(job) });
        *sh.job.lock() = Some(job_ref);
        sh.done.store(0, Ordering::Release);
        sh.epoch.fetch_add(1, Ordering::Release);
        {
            // Lock/notify pairing prevents a worker from sleeping through
            // the epoch bump.
            let _g = sh.work_mx.lock();
            sh.work_cv.notify_all();
        }
        // Participate.
        run_marked(job);
        // Wait for all workers: spin first, then park with a timeout
        // backstop.
        let mut spins = 0usize;
        while sh.done.load(Ordering::Acquire) < sh.workers {
            spins += 1;
            if spins < DONE_SPINS {
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            } else {
                let mut g = sh.done_mx.lock();
                if sh.done.load(Ordering::Acquire) < sh.workers {
                    sh.done_cv.wait_for(&mut g, Duration::from_micros(200));
                }
            }
        }
        *sh.job.lock() = None;
        sh.broadcasting.store(false, Ordering::Release);
    }
}

fn run_marked(job: &(dyn Fn() + Sync)) {
    let was = IN_PARALLEL.with(|f| f.replace(true));
    job();
    IN_PARALLEL.with(|f| f.set(was));
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        // Wait for a new epoch: spin, then park.
        let mut spins = 0usize;
        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                return;
            }
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen_epoch {
                seen_epoch = e;
                break;
            }
            spins += 1;
            if spins < WORKER_SPINS {
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            } else {
                let mut g = shared.work_mx.lock();
                if shared.epoch.load(Ordering::Acquire) == seen_epoch
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    shared.work_cv.wait_for(&mut g, Duration::from_millis(1));
                }
            }
        }
        // The job slot was written before the epoch bump and stays set
        // until every worker (including us) reports done.
        let job = shared.job.lock().expect("job set for current epoch");
        run_marked(job.0);
        if shared.done.fetch_add(1, Ordering::AcqRel) + 1 == shared.workers {
            let _g = shared.done_mx.lock();
            shared.done_cv.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.work_mx.lock();
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();

/// Returns the process-global pool, creating it on first use.
///
/// The thread count is taken from the `CC_NUM_THREADS` environment variable
/// if set, otherwise from [`std::thread::available_parallelism`].
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL_POOL.get_or_init(|| {
        let threads = std::env::var("CC_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or_else(|| {
                // Broadcast synchronization cost grows with participant
                // count; past ~16 threads the memory-bound kernels in this
                // workspace gain nothing. Explicit CC_NUM_THREADS overrides.
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
            });
        ThreadPool::new(threads)
    })
}

/// Number of threads the global pool uses.
pub fn num_threads() -> usize {
    global_pool().threads()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_runs_on_all_threads() {
        let pool = ThreadPool::new(4);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn broadcast_single_thread_pool() {
        let pool = ThreadPool::new(1);
        let count = AtomicUsize::new(0);
        pool.broadcast(&|| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn repeated_broadcasts_each_run_everywhere() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.broadcast(&|| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1500);
    }

    #[test]
    fn nested_broadcast_degrades_to_sequential() {
        let pool = ThreadPool::new(4);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        pool.broadcast(&|| {
            outer.fetch_add(1, Ordering::Relaxed);
            // Nested: should run only on this thread.
            pool.broadcast(&|| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 4);
        assert_eq!(inner.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(8);
        pool.broadcast(&|| {});
        drop(pool); // must not hang
    }

    #[test]
    fn broadcast_after_idle_period() {
        // Workers park after the spin budget; a late broadcast must still
        // wake them all.
        let pool = ThreadPool::new(4);
        std::thread::sleep(Duration::from_millis(30));
        let count = AtomicUsize::new(0);
        pool.broadcast(&|| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }
}
