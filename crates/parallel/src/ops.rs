//! Data-parallel loop and reduction primitives built on the broadcast pool.

use crate::pool::global_pool;
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Below this size a loop runs inline: the dispatch cost outweighs any win.
pub const SEQ_THRESHOLD: usize = 2048;

/// How many chunks per thread a dynamic loop creates. More chunks = better
/// balance under skew, more counter traffic.
const CHUNKS_PER_THREAD: usize = 8;

/// Computes the default chunk (grain) size for an `n`-iteration loop.
fn default_grain(n: usize, threads: usize) -> usize {
    (n / (threads * CHUNKS_PER_THREAD)).max(1)
}

/// Runs `f(i)` for every `i in 0..n` in parallel with dynamic load
/// balancing. Iterations must be independent; `f` observes shared state
/// only through `Sync` types.
pub fn parallel_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_grained(n, 0, f);
}

/// [`parallel_for`] with an explicit grain (minimum chunk size). A grain of
/// `0` picks a default based on the pool size.
pub fn parallel_for_grained<F>(n: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_chunks_grained(n, grain, |range| {
        for i in range {
            f(i);
        }
    });
}

/// Runs `f(range)` over disjoint chunks covering `0..n` in parallel. Useful
/// when per-chunk setup (e.g. a scratch buffer) amortizes better than
/// per-iteration calls.
pub fn parallel_for_chunks<F>(n: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    parallel_for_chunks_grained(n, 0, f);
}

/// [`parallel_for_chunks`] with an explicit grain.
pub fn parallel_for_chunks_grained<F>(n: usize, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let pool = global_pool();
    let threads = pool.threads();
    if n <= SEQ_THRESHOLD.max(grain) || threads == 1 {
        f(0..n);
        return;
    }
    let grain = if grain == 0 { default_grain(n, threads) } else { grain };
    let nchunks = n.div_ceil(grain);
    let next = AtomicUsize::new(0);
    pool.broadcast(&|| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= nchunks {
            break;
        }
        let lo = c * grain;
        let hi = (lo + grain).min(n);
        f(lo..hi);
    });
}

/// Parallel map-reduce: computes `combine` over `map(i)` for `i in 0..n`,
/// starting from `identity`. `combine` must be associative and commutative
/// (chunk results are folded in a nondeterministic order).
pub fn parallel_reduce<T, M, C>(n: usize, identity: T, map: M, combine: C) -> T
where
    T: Clone + Send + Sync,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    if n == 0 {
        return identity;
    }
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
    parallel_for_chunks(n, |range| {
        let mut acc = identity.clone();
        for i in range {
            acc = combine(acc, map(i));
        }
        partials.lock().push(acc);
    });
    partials.into_inner().into_iter().fold(identity, combine)
}

/// Sums `map(i)` over `0..n` in parallel.
pub fn parallel_sum<M>(n: usize, map: M) -> usize
where
    M: Fn(usize) -> usize + Sync,
{
    parallel_reduce(n, 0usize, map, |a, b| a + b)
}

/// Counts the `i in 0..n` for which `pred(i)` holds.
pub fn parallel_count<P>(n: usize, pred: P) -> usize
where
    P: Fn(usize) -> bool + Sync,
{
    parallel_sum(n, |i| usize::from(pred(i)))
}

/// Returns the index of a maximum of `key(i)` over `0..n`, or `None` for an
/// empty range. Ties break towards an arbitrary index.
pub fn parallel_max_index<K, T>(n: usize, key: K) -> Option<usize>
where
    T: PartialOrd + Send + Sync + Clone,
    K: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return None;
    }
    let best = parallel_reduce(
        n,
        None::<(usize, T)>,
        |i| Some((i, key(i))),
        |a, b| match (a, b) {
            (None, x) | (x, None) => x,
            (Some((ia, ka)), Some((ib, kb))) => {
                if kb > ka {
                    Some((ib, kb))
                } else {
                    Some((ia, ka))
                }
            }
        },
    );
    best.map(|(i, _)| i)
}

/// Fills `out[i] = f(i)` in parallel and returns the vector.
pub fn parallel_tabulate<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(n);
    {
        let ptr = SendPtr::new(out.as_mut_ptr());
        parallel_for_chunks(n, |range| {
            for i in range {
                // Safety: disjoint chunks write disjoint slots, all in
                // capacity; set_len afterwards makes them visible.
                unsafe { ptr.get().add(i).write(f(i)) };
            }
        });
    }
    // Safety: every slot in 0..n was initialized exactly once above.
    unsafe { out.set_len(n) };
    out
}

/// A `Send + Sync + Copy` raw-pointer wrapper for disjoint parallel writes.
///
/// The pointer is private and only reachable through [`SendPtr::get`], so
/// edition-2021 disjoint closure capture grabs the whole (Sync) wrapper
/// rather than the raw pointer field.
pub(crate) struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    pub(crate) fn new(p: *mut T) -> Self {
        SendPtr(p)
    }
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 100_000;
        let marks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for(n, |i| {
            marks[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_zero_and_small() {
        parallel_for(0, |_| panic!("must not run"));
        let count = AtomicUsize::new(0);
        parallel_for(7, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn chunks_are_disjoint_and_cover() {
        let n = 50_000;
        let marks: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        parallel_for_chunks_grained(n, 97, |r| {
            for i in r {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reduce_sums_correctly() {
        let n = 123_457;
        let s = parallel_sum(n, |i| i);
        assert_eq!(s, n * (n - 1) / 2);
    }

    #[test]
    fn reduce_empty_returns_identity() {
        assert_eq!(parallel_sum(0, |_| 1), 0);
    }

    #[test]
    fn max_index_finds_max() {
        let v: Vec<u64> = (0..10_000).map(|i| (i * 2654435761u64) % 99991).collect();
        let idx = parallel_max_index(v.len(), |i| v[i]).unwrap();
        let expect = v.iter().enumerate().max_by_key(|(_, x)| **x).unwrap().0;
        assert_eq!(v[idx], v[expect]);
    }

    #[test]
    fn max_index_empty_is_none() {
        assert_eq!(parallel_max_index(0, |i| i), None);
    }

    #[test]
    fn tabulate_matches_sequential() {
        let v = parallel_tabulate(100_000, |i| i * 3 + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3 + 1));
    }

    #[test]
    fn parallel_count_counts() {
        assert_eq!(parallel_count(100_000, |i| i % 3 == 0), 33_334);
    }
}
