//! Property tests: every primitive must agree with its obvious sequential
//! reference on arbitrary inputs.

use cc_parallel::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_matches_reference(mut data in proptest::collection::vec(0usize..1000, 0..5000)) {
        let mut reference = data.clone();
        let total = scan_exclusive(&mut data);
        let mut acc = 0usize;
        for x in reference.iter_mut() {
            let v = *x;
            *x = acc;
            acc += v;
        }
        prop_assert_eq!(total, acc);
        prop_assert_eq!(data, reference);
    }

    #[test]
    fn pack_matches_filter(data in proptest::collection::vec(any::<u16>(), 0..5000), m in 1u16..64) {
        let got = pack_indices(data.len(), |i| data[i] % m == 0);
        let expect: Vec<u32> =
            (0..data.len() as u32).filter(|&i| data[i as usize] % m == 0).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn histogram_matches_reference(keys in proptest::collection::vec(0u32..256, 0..5000)) {
        let got = histogram(keys.len(), 256, |i| keys[i]);
        let mut expect = vec![0usize; 256];
        for &k in &keys {
            expect[k as usize] += 1;
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn counting_sort_is_a_grouping_permutation(
        keys in proptest::collection::vec(0u32..50, 1..3000)
    ) {
        let (perm, offs) = counting_sort_indices(keys.len(), 50, |i| keys[i]);
        // Permutation property.
        let mut seen = vec![false; keys.len()];
        for &i in &perm {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        // Grouping property.
        for b in 0..50 {
            for &i in &perm[offs[b]..offs[b + 1]] {
                prop_assert_eq!(keys[i as usize], b as u32);
            }
        }
    }

    #[test]
    fn reduce_is_order_insensitive(data in proptest::collection::vec(any::<i32>(), 0..5000)) {
        let sum = parallel_reduce(data.len(), 0i64, |i| data[i] as i64, |a, b| a + b);
        let expect: i64 = data.iter().map(|&x| x as i64).sum();
        prop_assert_eq!(sum, expect);
    }

    #[test]
    fn tabulate_matches(n in 0usize..10000, mult in 1usize..7) {
        let v = parallel_tabulate(n, |i| i * mult);
        prop_assert!(v.iter().enumerate().all(|(i, &x)| x == i * mult));
    }

    #[test]
    fn write_min_is_min(vals in proptest::collection::vec(any::<u32>(), 1..2000)) {
        use std::sync::atomic::{AtomicU32, Ordering};
        let loc = AtomicU32::new(u32::MAX);
        parallel_for(vals.len(), |i| {
            write_min_u32(&loc, vals[i]);
        });
        prop_assert_eq!(loc.load(Ordering::Relaxed), *vals.iter().min().expect("nonempty"));
    }
}
