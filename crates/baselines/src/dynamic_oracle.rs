//! A naive fully-dynamic connectivity oracle: adjacency sets plus a BFS
//! per query. Deliberately the dumbest correct thing — `O(n + m)` per
//! query, no caching, no incrementality — so it can adjudicate every
//! deletion-capable structure in the repo (the core
//! [`connectit::DynamicConnectivity`] baseline, the server's generation
//! engine, crash-recovered and replicated states) without sharing a line
//! of logic with any of them.
//!
//! Semantics are sequential and exact: each operation fully applies
//! before the next, duplicate inserts and absent deletes are no-ops, and
//! self-loops are never live.

use connectit::Update;
use std::collections::HashSet;
use std::collections::VecDeque;

/// The reference structure (see module docs).
pub struct DynamicOracle {
    adj: Vec<HashSet<u32>>,
    num_edges: usize,
}

impl DynamicOracle {
    /// An empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        DynamicOracle { adj: vec![HashSet::new(); n], num_edges: 0 }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Inserts `{u, v}`; returns whether the edge was novel (self-loops
    /// never are).
    pub fn insert(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let novel = self.adj[u as usize].insert(v);
        self.adj[v as usize].insert(u);
        self.num_edges += usize::from(novel);
        novel
    }

    /// Deletes `{u, v}`; returns whether the edge was live.
    pub fn delete(&mut self, u: u32, v: u32) -> bool {
        if u == v {
            return false;
        }
        let was_live = self.adj[u as usize].remove(&v);
        self.adj[v as usize].remove(&u);
        self.num_edges -= usize::from(was_live);
        was_live
    }

    /// Exact connectivity by BFS over the live adjacency.
    pub fn connected(&self, u: u32, v: u32) -> bool {
        if u == v {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut queue = VecDeque::from([u]);
        seen[u as usize] = true;
        while let Some(x) = queue.pop_front() {
            for &y in &self.adj[x as usize] {
                if y == v {
                    return true;
                }
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    queue.push_back(y);
                }
            }
        }
        false
    }

    /// Applies one operation; queries return `Some(answer)`.
    pub fn apply(&mut self, op: Update) -> Option<bool> {
        match op {
            Update::Insert(u, v) => {
                self.insert(u, v);
                None
            }
            Update::Delete(u, v) => {
                self.delete(u, v);
                None
            }
            Update::Query(u, v) => Some(self.connected(u, v)),
        }
    }

    /// Applies a batch sequentially; returns query answers in order.
    pub fn apply_batch(&mut self, batch: &[Update]) -> Vec<bool> {
        batch.iter().filter_map(|&op| self.apply(op)).collect()
    }

    /// The exact component labeling (each component labeled by its
    /// minimum member), BFS flood per component.
    pub fn labels(&self) -> Vec<u32> {
        let n = self.adj.len();
        let mut labels = vec![u32::MAX; n];
        for start in 0..n as u32 {
            if labels[start as usize] != u32::MAX {
                continue;
            }
            labels[start as usize] = start;
            let mut queue = VecDeque::from([start]);
            while let Some(x) = queue.pop_front() {
                for &y in &self.adj[x as usize] {
                    if labels[y as usize] == u32::MAX {
                        labels[y as usize] = start;
                        queue.push_back(y);
                    }
                }
            }
        }
        labels
    }

    /// The live edge list as canonical `(min, max)` pairs, sorted — handy
    /// for comparing two states structurally.
    pub fn edge_list(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                if (u as u32) < v {
                    out.push((u as u32, v));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_deletes_and_queries() {
        let mut o = DynamicOracle::new(5);
        assert!(o.insert(0, 1));
        assert!(o.insert(1, 2));
        assert!(!o.insert(2, 1), "duplicate insert is a no-op");
        assert!(!o.insert(3, 3), "self-loop is never live");
        assert_eq!(o.num_edges(), 2);
        assert!(o.connected(0, 2));
        assert!(!o.connected(0, 3));
        assert!(o.delete(1, 2));
        assert!(!o.delete(1, 2), "duplicate delete is a no-op");
        assert!(!o.delete(0, 4), "absent delete is a no-op");
        assert!(!o.connected(0, 2));
        assert!(o.connected(0, 1));
        assert_eq!(o.labels(), vec![0, 0, 2, 3, 4]);
        assert_eq!(o.edge_list(), vec![(0, 1)]);
    }

    #[test]
    fn batch_application_is_sequential() {
        let mut o = DynamicOracle::new(4);
        let answers = o.apply_batch(&[
            Update::Insert(0, 1),
            Update::Query(0, 1),
            Update::Delete(0, 1),
            Update::Query(0, 1),
            Update::Query(2, 2),
        ]);
        assert_eq!(answers, vec![true, false, true]);
    }

    #[test]
    fn agrees_with_core_dynamic_baseline() {
        use cc_unionfind::UfSpec;
        let n = 60usize;
        let mut o = DynamicOracle::new(n);
        let mut d = connectit::DynamicConnectivity::new(n, UfSpec::fastest(), 11);
        // A deterministic interleaving with plenty of collisions.
        let mut ops = Vec::new();
        for i in 0..400u32 {
            let (u, v) = ((i * 7) % n as u32, (i * 13 + 1) % n as u32);
            ops.push(match i % 5 {
                0..=2 => Update::Insert(u, v),
                3 => Update::Delete((i * 3) % n as u32, (i * 11 + 2) % n as u32),
                _ => Update::Query(u, v),
            });
        }
        let want: Vec<bool> = ops.iter().filter_map(|&op| o.apply(op)).collect();
        let got = d.process_batch(&ops);
        assert_eq!(got, want);
        assert!(cc_graph::stats::same_partition(&o.labels(), &d.labels()));
    }
}
