//! WorkefficientCC: the provably work-efficient connectivity algorithm of
//! Shun, Dhulipala, and Blelloch (SPAA 2014) — recursively apply a
//! low-diameter decomposition and contract, until no inter-cluster edges
//! remain. This held the pre-ConnectIt record on the Hyperlink2012 graph.

use cc_graph::builder::build_undirected;
use cc_graph::ldd::ldd;
use cc_graph::{CsrGraph, VertexId};
use cc_parallel::{parallel_tabulate, scan_exclusive};

/// Maximum recursion depth guard (each level contracts the graph; real
/// inputs finish in a handful of levels).
const MAX_LEVELS: usize = 64;

/// Computes connected components via recursive LDD + contraction.
pub fn work_efficient_cc(g: &CsrGraph, beta: f64, seed: u64) -> Vec<VertexId> {
    cc_recursive(g, beta, seed, 0)
}

fn cc_recursive(g: &CsrGraph, beta: f64, seed: u64, level: usize) -> Vec<VertexId> {
    let n = g.num_vertices();
    if g.num_directed_edges() == 0 || level >= MAX_LEVELS {
        return (0..n as u32).collect();
    }
    // Permute at every level: MPX's exponential activation schedule relies
    // on randomized activation order (id order degenerates on id-local
    // graphs, and contracted graphs inherit id locality).
    let decomposition = ldd(g, beta, true, seed.wrapping_add(level as u64));
    let cluster_of = decomposition.labels;

    // Dense renumbering of cluster centers.
    let mut is_center = vec![0usize; n];
    for &c in &cluster_of {
        is_center[c as usize] = 1;
    }
    let mut center_id = is_center;
    let num_clusters = scan_exclusive(&mut center_id);
    if num_clusters == n {
        // No contraction happened (pathological beta); force progress by
        // halving beta, which makes clusters strictly larger.
        return cc_recursive(g, (beta * 0.5).max(1e-3), seed ^ 0x9E37, level + 1);
    }

    // Contracted multigraph: inter-cluster edges mapped through the dense
    // renumbering. `build_undirected` deduplicates.
    let inter: Vec<(u32, u32)> = {
        let cluster_of = &cluster_of;
        let center_id = &center_id;
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                if u < v && cluster_of[u as usize] != cluster_of[v as usize] {
                    edges.push((
                        center_id[cluster_of[u as usize] as usize] as u32,
                        center_id[cluster_of[v as usize] as usize] as u32,
                    ));
                }
            }
        }
        edges
    };
    let contracted = build_undirected(num_clusters, &inter);
    let sub_labels = cc_recursive(&contracted, beta, seed.wrapping_mul(31), level + 1);

    // Map back: the label of v is the representative of its cluster's
    // component in the contracted graph.
    parallel_tabulate(n, |v| {
        let c = center_id[cluster_of[v] as usize];
        sub_labels[c]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators::{grid2d, rmat_default};
    use cc_graph::stats::{component_stats, same_partition};

    #[test]
    fn solves_grid() {
        let g = grid2d(50, 50);
        let labels = work_efficient_cc(&g, 0.2, 1);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn solves_rmat_multi_component() {
        let el = rmat_default(12, 20_000, 5);
        let g = build_undirected(el.num_vertices, &el.edges);
        let labels = work_efficient_cc(&g, 0.2, 2);
        assert!(same_partition(&component_stats(&g).labels, &labels));
    }

    #[test]
    fn various_betas_agree() {
        let g = grid2d(30, 30);
        let expect = component_stats(&g).labels;
        for beta in [0.05, 0.2, 0.8] {
            let labels = work_efficient_cc(&g, beta, 7);
            assert!(same_partition(&expect, &labels), "beta {beta}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = cc_graph::CsrGraph::empty(5);
        let labels = work_efficient_cc(&g, 0.2, 0);
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
    }
}
