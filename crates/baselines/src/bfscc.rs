//! BFSCC: the Ligra-style BFS-based connectivity baseline (Table 3's
//! "Other Systems" group). Computes each component with a parallel
//! direction-optimizing BFS from the first uncovered vertex.

use cc_graph::bfs::bfs_multi;
use cc_graph::{CsrGraph, VertexId, NO_VERTEX};

/// Computes connected components by repeated parallel BFS.
pub fn bfscc(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut labels = vec![NO_VERTEX; n];
    let mut next_start = 0usize;
    while let Some(src) = (next_start..n).find(|&v| labels[v] == NO_VERTEX) {
        next_start = src + 1;
        let res = bfs_multi(g, &[src as VertexId]);
        for (l, &p) in labels.iter_mut().zip(&res.parents) {
            if *l == NO_VERTEX && p != NO_VERTEX {
                *l = src as VertexId;
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::build_undirected;
    use cc_graph::generators::{grid2d, rmat_default};
    use cc_graph::stats::{component_stats, same_partition};

    #[test]
    fn bfscc_single_component() {
        let g = grid2d(20, 20);
        let labels = bfscc(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn bfscc_many_components() {
        let el = rmat_default(10, 2_000, 6);
        let g = build_undirected(el.num_vertices, &el.edges);
        let labels = bfscc(&g);
        assert!(same_partition(&component_stats(&g).labels, &labels));
    }

    #[test]
    fn bfscc_isolated_vertices_label_themselves() {
        let g = build_undirected(4, &[(1, 2)]);
        let labels = bfscc(&g);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[3], 3);
        assert_eq!(labels[1], labels[2]);
    }
}
