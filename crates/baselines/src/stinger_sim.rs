//! STINGER-sim: a synthetic stand-in for the STINGER streaming-graph
//! system used as the comparator in Table 5.
//!
//! STINGER (Ediger et al., HPEC 2012) stores adjacency as chained
//! fixed-size edge blocks updated under fine-grained locking, and maintains
//! streaming connected components with the label-repair algorithm of McColl
//! et al. (HiPC 2013), which — because it must anticipate deletions — keeps
//! plain per-vertex labels (no compressed parent forest) and repairs them
//! by scanning on every merge. We reproduce that cost profile:
//!
//! 1. every insertion walks the target vertex's block chain under a lock,
//!    checking for duplicates and free slots;
//! 2. every label merge relabels by a full scan over the vertex set.
//!
//! This is deliberately *not* an optimized algorithm: it is the baseline
//! whose 3–5 orders of magnitude gap against Union-Rem-CAS Table 5
//! documents (1,461–28,364x in the paper).

use cc_graph::VertexId;
use cc_parallel::{parallel_for, parallel_for_chunks};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, Ordering};

/// Edges per block, as in STINGER's default configuration.
const EDGES_PER_BLOCK: usize = 14;

/// One fixed-size edge block in a vertex's chain.
struct EdgeBlock {
    edges: [VertexId; EDGES_PER_BLOCK],
    len: usize,
}

impl EdgeBlock {
    fn new() -> Self {
        EdgeBlock { edges: [0; EDGES_PER_BLOCK], len: 0 }
    }
}

/// A STINGER-like dynamic graph with streaming connected components.
pub struct StingerSim {
    adjacency: Vec<Mutex<Vec<EdgeBlock>>>,
    labels: Vec<AtomicU32>,
}

impl StingerSim {
    /// Creates an empty dynamic graph on `n` vertices. (The real system's
    /// initialization is notoriously slow at large `n`; ours is just an
    /// allocation.)
    pub fn new(n: usize) -> Self {
        StingerSim {
            adjacency: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            labels: (0..n).map(|v| AtomicU32::new(v as u32)).collect(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Inserts one directed arc into the block chain (duplicate-checked),
    /// returning whether it was new.
    fn insert_arc(&self, u: VertexId, v: VertexId) -> bool {
        let mut chain = self.adjacency[u as usize].lock();
        for block in chain.iter() {
            if block.edges[..block.len].contains(&v) {
                return false;
            }
        }
        match chain.iter_mut().find(|b| b.len < EDGES_PER_BLOCK) {
            Some(block) => {
                let at = block.len;
                block.edges[at] = v;
                block.len = at + 1;
            }
            None => {
                let mut block = EdgeBlock::new();
                block.edges[0] = v;
                block.len = 1;
                chain.push(block);
            }
        }
        true
    }

    /// Applies a batch of edge insertions: structural update under
    /// per-vertex locks, then label repair. Returns the time spent on the
    /// connectivity-label update alone (the quantity Table 5 reports, which
    /// excludes structure maintenance).
    pub fn batch_insert(&self, batch: &[(VertexId, VertexId)]) -> std::time::Duration {
        // Structural update (parallel, fine-grained locking).
        parallel_for_chunks(batch.len(), |r| {
            for i in r {
                let (u, v) = batch[i];
                if u != v {
                    self.insert_arc(u, v);
                    self.insert_arc(v, u);
                }
            }
        });
        // Label repair (timed separately, as in the paper's methodology).
        let t0 = std::time::Instant::now();
        for &(u, v) in batch {
            if u == v {
                continue;
            }
            let lu = self.labels[u as usize].load(Ordering::Relaxed);
            let lv = self.labels[v as usize].load(Ordering::Relaxed);
            if lu == lv {
                continue;
            }
            let (keep, repl) = if lu < lv { (lu, lv) } else { (lv, lu) };
            // McColl-style repair: relabel the absorbed component by a
            // scan (no parent forest to compress, deletions must stay
            // serviceable).
            parallel_for(self.labels.len(), |w| {
                if self.labels[w].load(Ordering::Relaxed) == repl {
                    self.labels[w].store(keep, Ordering::Relaxed);
                }
            });
        }
        t0.elapsed()
    }

    /// Current component label of `v`.
    pub fn label(&self, v: VertexId) -> VertexId {
        self.labels[v as usize].load(Ordering::Relaxed)
    }

    /// Whether `u` and `v` are currently connected.
    pub fn connected(&self, u: VertexId, v: VertexId) -> bool {
        self.label(u) == self.label(v)
    }

    /// Snapshot of all labels.
    pub fn labels(&self) -> Vec<VertexId> {
        cc_parallel::snapshot_u32(&self.labels)
    }

    /// Degree of `v` in the dynamic structure (for tests).
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v as usize].lock().iter().map(|b| b.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::stats::same_partition;
    use cc_unionfind::oracle_labels;

    #[test]
    fn inserts_dedupe_and_chain_blocks() {
        let s = StingerSim::new(64);
        s.batch_insert(&[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(s.degree(0), 1);
        assert_eq!(s.degree(1), 1);
        // Push past one block: 40 distinct neighbors of vertex 2.
        let batch: Vec<(u32, u32)> = (3..43u32).map(|v| (2, v)).collect();
        s.batch_insert(&batch);
        assert_eq!(s.degree(2), 40);
        assert!(s.adjacency[2].lock().len() >= 2, "chained into multiple blocks");
    }

    #[test]
    fn labels_track_connectivity() {
        let s = StingerSim::new(6);
        s.batch_insert(&[(0, 1), (2, 3)]);
        assert!(s.connected(0, 1));
        assert!(!s.connected(0, 2));
        s.batch_insert(&[(1, 2)]);
        assert!(s.connected(0, 3));
        assert!(!s.connected(0, 5));
    }

    #[test]
    fn matches_oracle_over_batches() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let n = 500;
        let edges: Vec<(u32, u32)> =
            (0..2_000).map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))).collect();
        let s = StingerSim::new(n);
        for chunk in edges.chunks(100) {
            s.batch_insert(chunk);
        }
        let expect = oracle_labels(n, &edges);
        assert!(same_partition(&expect, &s.labels()));
    }
}
