//! # cc-baselines
//!
//! The comparator systems of the ConnectIt evaluation, implemented in-repo:
//! BFSCC (Ligra's BFS connectivity), the work-efficient LDD+contraction
//! algorithm of Shun et al. (the pre-ConnectIt Hyperlink2012 record
//! holder), and a STINGER-like streaming baseline for Table 5.
//!
//! The remaining Table 3 comparators are algorithmically equivalent to
//! ConnectIt configurations and are exposed as such by the bench harness:
//! PatwaryRM = `Union-Rem-Lock{SpliceAtomic}`, GAPBS-Afforest =
//! kout-afforest sampling + Union-Async, MultiStep = BFS sampling +
//! Label-Propagation, Galois = asynchronous label propagation.

#![warn(missing_docs)]

pub mod bfscc;
pub mod dynamic_oracle;
pub mod stinger_sim;
pub mod workefficient;

pub use bfscc::bfscc;
pub use dynamic_oracle::DynamicOracle;
pub use stinger_sim::StingerSim;
pub use workefficient::work_efficient_cc;
